//! The lithiation example reaction and its design of experiments.
//!
//! Paper §III.B / Figure 8: "the synthesis of nitro-4'-methyldiphenylamine
//! (MNDPA) by aromatic substitution of p-toluidine and 1-fluoro-2-
//! nitrobenzene (o-FNB) ... p-toluidine was activated by a proton exchange
//! with ... Li-HMDS, giving four relevant components in all mixtures.
//! The flow reactor was operated along a DoE yielding representative
//! mixture spectra."
//!
//! This module models that reaction with simple first-order kinetics in a
//! plug-flow reactor and enumerates the DoE operating points the reactor
//! is stepped through.

use serde::{Deserialize, Serialize};

use crate::ChemError;

/// Effective first-order rate constant of the activated substitution
/// (1/s). Chosen so that residence times of 30–300 s span conversions of
/// roughly 15–95 %.
pub const RATE_CONSTANT: f64 = 0.01;

/// Operating conditions of one steady-state point of the flow reactor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReactionConditions {
    /// Feed concentration of p-toluidine in mol/L.
    pub toluidine_feed: f64,
    /// Molar feed ratio o-FNB : p-toluidine.
    pub fnb_ratio: f64,
    /// Molar feed ratio Li-HMDS : p-toluidine.
    pub hmds_ratio: f64,
    /// Residence time in the reactor in seconds.
    pub residence_time: f64,
}

impl ReactionConditions {
    /// Validates the conditions.
    ///
    /// # Errors
    ///
    /// Returns [`ChemError::InvalidReaction`] if any quantity is
    /// non-finite or out of physical range (feeds and ratios must be
    /// positive, residence time non-negative).
    pub fn validate(&self) -> Result<(), ChemError> {
        let checks = [
            ("toluidine_feed", self.toluidine_feed, true),
            ("fnb_ratio", self.fnb_ratio, true),
            ("hmds_ratio", self.hmds_ratio, true),
            ("residence_time", self.residence_time, false),
        ];
        for (name, value, strictly_positive) in checks {
            if !value.is_finite() || value < 0.0 || (strictly_positive && value == 0.0) {
                return Err(ChemError::InvalidReaction(format!("{name} = {value}")));
            }
        }
        Ok(())
    }
}

/// Steady-state concentrations of the four relevant components, in the
/// canonical label order `[p-toluidine, o-FNB, Li-HMDS, MNDPA]` (mol/L).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComponentConcentrations {
    /// Unreacted p-toluidine.
    pub toluidine: f64,
    /// Unreacted 1-fluoro-2-nitrobenzene.
    pub fnb: f64,
    /// Remaining lithium bis(trimethylsilyl)amide.
    pub hmds: f64,
    /// Product: 2-nitro-4'-methyldiphenylamine.
    pub mndpa: f64,
}

impl ComponentConcentrations {
    /// The concentrations as a vector in canonical label order.
    pub fn to_vec(&self) -> Vec<f64> {
        vec![self.toluidine, self.fnb, self.hmds, self.mndpa]
    }

    /// Builds concentrations from a canonical-order slice.
    ///
    /// # Errors
    ///
    /// Returns [`ChemError::InvalidReaction`] if the slice does not have
    /// exactly four non-negative finite entries.
    pub fn from_slice(values: &[f64]) -> Result<Self, ChemError> {
        if values.len() != 4 {
            return Err(ChemError::InvalidReaction(format!(
                "expected 4 concentrations, got {}",
                values.len()
            )));
        }
        for &v in values {
            if !v.is_finite() || v < 0.0 {
                return Err(ChemError::InvalidReaction(format!(
                    "concentration {v} must be non-negative"
                )));
            }
        }
        Ok(Self {
            toluidine: values[0],
            fnb: values[1],
            hmds: values[2],
            mndpa: values[3],
        })
    }
}

/// The lithiation reaction model: maps operating conditions to
/// steady-state outlet concentrations via first-order plug-flow kinetics
/// limited by the scarcest reagent.
///
/// # Example
///
/// ```
/// use chem::reaction::{LithiationReaction, ReactionConditions};
///
/// # fn main() -> Result<(), chem::ChemError> {
/// let reaction = LithiationReaction::new();
/// let c = reaction.steady_state(&ReactionConditions {
///     toluidine_feed: 0.5,
///     fnb_ratio: 1.1,
///     hmds_ratio: 1.2,
///     residence_time: 120.0,
/// })?;
/// assert!(c.mndpa > 0.0 && c.toluidine < 0.5);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LithiationReaction {
    rate_constant: f64,
}

impl LithiationReaction {
    /// The reaction with the default rate constant.
    pub fn new() -> Self {
        Self {
            rate_constant: RATE_CONSTANT,
        }
    }

    /// A reaction with a custom rate constant (for kinetics sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`ChemError::InvalidReaction`] if `k` is not strictly
    /// positive and finite.
    pub fn with_rate_constant(k: f64) -> Result<Self, ChemError> {
        if !(k.is_finite() && k > 0.0) {
            return Err(ChemError::InvalidReaction(format!("rate constant {k}")));
        }
        Ok(Self { rate_constant: k })
    }

    /// The first-order rate constant in 1/s.
    pub fn rate_constant(&self) -> f64 {
        self.rate_constant
    }

    /// Fractional conversion of p-toluidine at the given conditions.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from [`ReactionConditions::validate`].
    pub fn conversion(&self, conditions: &ReactionConditions) -> Result<f64, ChemError> {
        conditions.validate()?;
        // Kinetic conversion of the activated substrate...
        let kinetic = 1.0 - (-self.rate_constant * conditions.residence_time).exp();
        // ...capped by the limiting reagent (substitution consumes one
        // o-FNB and one Li-HMDS per p-toluidine).
        let cap = conditions.fnb_ratio.min(conditions.hmds_ratio).min(1.0);
        Ok(kinetic * cap)
    }

    /// Steady-state outlet concentrations.
    ///
    /// # Errors
    ///
    /// Propagates validation errors from [`ReactionConditions::validate`].
    pub fn steady_state(
        &self,
        conditions: &ReactionConditions,
    ) -> Result<ComponentConcentrations, ChemError> {
        let x = self.conversion(conditions)?;
        let c0 = conditions.toluidine_feed;
        Ok(ComponentConcentrations {
            toluidine: c0 * (1.0 - x),
            fnb: c0 * (conditions.fnb_ratio - x),
            hmds: c0 * (conditions.hmds_ratio - x),
            mndpa: c0 * x,
        })
    }
}

impl Default for LithiationReaction {
    fn default() -> Self {
        Self::new()
    }
}

/// A full-factorial design of experiments over residence time and feed
/// ratios — the "different reaction conditions ... generated with the help
/// of laboratory equipment" the paper bases its 300-spectrum dataset on.
///
/// Returns `residence_levels × ratio_levels` operating points.
pub fn design_of_experiments(
    toluidine_feed: f64,
    residence_levels: &[f64],
    ratio_levels: &[(f64, f64)],
) -> Vec<ReactionConditions> {
    let mut points = Vec::with_capacity(residence_levels.len() * ratio_levels.len());
    for &tau in residence_levels {
        for &(fnb_ratio, hmds_ratio) in ratio_levels {
            points.push(ReactionConditions {
                toluidine_feed,
                fnb_ratio,
                hmds_ratio,
                residence_time: tau,
            });
        }
    }
    points
}

/// The default DoE used by the NMR experiments: five residence times ×
/// three reagent-ratio pairs = 15 steady-state plateaus; with 20 spectra
/// per plateau this yields the paper's 300 raw spectra.
pub fn default_doe() -> Vec<ReactionConditions> {
    design_of_experiments(
        0.5,
        &[30.0, 60.0, 120.0, 200.0, 300.0],
        &[(1.05, 1.1), (1.2, 1.3), (1.5, 1.6)],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn conditions(tau: f64) -> ReactionConditions {
        ReactionConditions {
            toluidine_feed: 0.5,
            fnb_ratio: 1.2,
            hmds_ratio: 1.3,
            residence_time: tau,
        }
    }

    #[test]
    fn conversion_increases_with_residence_time() {
        let r = LithiationReaction::new();
        let x1 = r.conversion(&conditions(30.0)).unwrap();
        let x2 = r.conversion(&conditions(300.0)).unwrap();
        assert!(x2 > x1);
        assert!(x1 > 0.0 && x2 < 1.0);
    }

    #[test]
    fn zero_residence_time_gives_zero_conversion() {
        let r = LithiationReaction::new();
        assert_eq!(r.conversion(&conditions(0.0)).unwrap(), 0.0);
    }

    #[test]
    fn mass_balance_holds() {
        let r = LithiationReaction::new();
        let cond = conditions(120.0);
        let c = r.steady_state(&cond).unwrap();
        // Toluidine + product = feed.
        assert!((c.toluidine + c.mndpa - cond.toluidine_feed).abs() < 1e-12);
        // o-FNB consumed equals product formed.
        let fnb_consumed = cond.toluidine_feed * cond.fnb_ratio - c.fnb;
        assert!((fnb_consumed - c.mndpa).abs() < 1e-12);
    }

    #[test]
    fn all_concentrations_non_negative() {
        let r = LithiationReaction::new();
        for point in default_doe() {
            let c = r.steady_state(&point).unwrap();
            for v in c.to_vec() {
                assert!(v >= 0.0, "{c:?}");
            }
        }
    }

    #[test]
    fn limiting_reagent_caps_conversion() {
        let r = LithiationReaction::with_rate_constant(10.0).unwrap(); // ~instant kinetics
        let starved = ReactionConditions {
            toluidine_feed: 0.5,
            fnb_ratio: 0.4,
            hmds_ratio: 2.0,
            residence_time: 1000.0,
        };
        let x = r.conversion(&starved).unwrap();
        assert!((x - 0.4).abs() < 1e-6, "conversion {x}");
    }

    #[test]
    fn validation_rejects_garbage() {
        let bad = ReactionConditions {
            toluidine_feed: -1.0,
            fnb_ratio: 1.0,
            hmds_ratio: 1.0,
            residence_time: 10.0,
        };
        assert!(bad.validate().is_err());
        assert!(LithiationReaction::with_rate_constant(0.0).is_err());
        assert!(LithiationReaction::with_rate_constant(f64::NAN).is_err());
    }

    #[test]
    fn default_doe_has_fifteen_points() {
        assert_eq!(default_doe().len(), 15);
    }

    #[test]
    fn concentration_vector_roundtrip() {
        let c = ComponentConcentrations {
            toluidine: 0.1,
            fnb: 0.2,
            hmds: 0.3,
            mndpa: 0.4,
        };
        let v = c.to_vec();
        assert_eq!(ComponentConcentrations::from_slice(&v).unwrap(), c);
        assert!(ComponentConcentrations::from_slice(&[1.0]).is_err());
        assert!(ComponentConcentrations::from_slice(&[1.0, 1.0, -1.0, 1.0]).is_err());
    }

    #[test]
    fn doe_points_are_distinct() {
        let points = default_doe();
        for i in 0..points.len() {
            for j in (i + 1)..points.len() {
                assert_ne!(points[i], points[j]);
            }
        }
    }
}
