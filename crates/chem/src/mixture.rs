//! Mixtures: fractional compositions of named compounds.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::ChemError;

/// How close to 1.0 the fractions of a [`Mixture`] must sum.
pub const FRACTION_TOLERANCE: f64 = 1e-6;

/// A mixture of named compounds with fractions that sum to one.
///
/// The paper's networks output "the percentages of the individual
/// substances in the sample" — i.e. exactly the fraction vector stored
/// here. Order is preserved: the fraction vector extracted via
/// [`Mixture::fractions_for`] matches the network's output layout.
///
/// # Example
///
/// ```
/// use chem::Mixture;
///
/// # fn main() -> Result<(), chem::ChemError> {
/// let mix = Mixture::from_fractions(vec![
///     ("N2".into(), 0.78),
///     ("O2".into(), 0.21),
///     ("Ar".into(), 0.01),
/// ])?;
/// assert_eq!(mix.fractions_for(&["Ar", "N2"]), vec![0.01, 0.78]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mixture {
    parts: Vec<(String, f64)>,
}

impl Mixture {
    /// Builds a mixture from `(compound name, fraction)` pairs.
    ///
    /// # Errors
    ///
    /// Returns [`ChemError::InvalidFraction`] if any fraction is negative
    /// or non-finite, a name repeats, or the fractions do not sum to one
    /// within [`FRACTION_TOLERANCE`]; [`ChemError::Empty`] for no parts.
    pub fn from_fractions(parts: Vec<(String, f64)>) -> Result<Self, ChemError> {
        if parts.is_empty() {
            return Err(ChemError::Empty);
        }
        let mut sum = 0.0;
        for (name, frac) in &parts {
            if !frac.is_finite() || *frac < 0.0 {
                return Err(ChemError::InvalidFraction(format!(
                    "fraction of {name} is {frac}"
                )));
            }
            if parts.iter().filter(|(n, _)| n == name).count() > 1 {
                return Err(ChemError::InvalidFraction(format!(
                    "compound {name} appears more than once"
                )));
            }
            sum += frac;
        }
        if (sum - 1.0).abs() > FRACTION_TOLERANCE {
            return Err(ChemError::InvalidFraction(format!(
                "fractions sum to {sum}, expected 1.0"
            )));
        }
        Ok(Self { parts })
    }

    /// Builds a mixture from raw non-negative weights, normalizing them to
    /// sum to one.
    ///
    /// # Errors
    ///
    /// Returns [`ChemError::InvalidFraction`] if any weight is negative or
    /// non-finite, or all weights are zero; [`ChemError::Empty`] for no
    /// parts.
    pub fn from_weights(parts: Vec<(String, f64)>) -> Result<Self, ChemError> {
        if parts.is_empty() {
            return Err(ChemError::Empty);
        }
        let mut total = 0.0;
        for (name, w) in &parts {
            if !w.is_finite() || *w < 0.0 {
                return Err(ChemError::InvalidFraction(format!(
                    "weight of {name} is {w}"
                )));
            }
            total += w;
        }
        if total <= 0.0 {
            return Err(ChemError::InvalidFraction("all weights are zero".into()));
        }
        let parts = parts
            .into_iter()
            .map(|(name, w)| (name, w / total))
            .collect();
        Self::from_fractions(parts)
    }

    /// A pure sample of a single compound.
    pub fn pure(name: impl Into<String>) -> Self {
        Self {
            parts: vec![(name.into(), 1.0)],
        }
    }

    /// Draws a random mixture of the named compounds, uniform on the
    /// simplex (via normalized exponentials). This is the concentration
    /// sampler behind the "arbitrary concentrations" of Tool 1.
    ///
    /// # Errors
    ///
    /// Returns [`ChemError::Empty`] if `names` is empty.
    pub fn random<R: Rng + ?Sized>(names: &[&str], rng: &mut R) -> Result<Self, ChemError> {
        if names.is_empty() {
            return Err(ChemError::Empty);
        }
        let weights: Vec<(String, f64)> = names
            .iter()
            .map(|&n| {
                let u: f64 = rng.gen::<f64>().max(1e-300);
                (n.to_string(), -u.ln())
            })
            .collect();
        Self::from_weights(weights)
    }

    /// The `(name, fraction)` pairs in insertion order.
    pub fn parts(&self) -> &[(String, f64)] {
        &self.parts
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Returns `true` if the mixture has no components (never, by
    /// construction).
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }

    /// Iterator over `(name, fraction)` pairs.
    pub fn iter(&self) -> std::slice::Iter<'_, (String, f64)> {
        self.parts.iter()
    }

    /// Fraction of the named compound (`0.0` if absent).
    pub fn fraction_of(&self, name: &str) -> f64 {
        self.parts
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0.0, |&(_, f)| f)
    }

    /// Extracts fractions in the order given by `names` (absent compounds
    /// yield `0.0`). This fixes the label layout for network training.
    pub fn fractions_for(&self, names: &[&str]) -> Vec<f64> {
        names.iter().map(|&n| self.fraction_of(n)).collect()
    }

    /// Component names in insertion order.
    pub fn names(&self) -> Vec<&str> {
        self.parts.iter().map(|(n, _)| n.as_str()).collect()
    }
}

impl<'a> IntoIterator for &'a Mixture {
    type Item = &'a (String, f64);
    type IntoIter = std::slice::Iter<'a, (String, f64)>;

    fn into_iter(self) -> Self::IntoIter {
        self.parts.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn valid_mixture_constructs() {
        let m = Mixture::from_fractions(vec![("A".into(), 0.4), ("B".into(), 0.6)]).unwrap();
        assert_eq!(m.len(), 2);
        assert_eq!(m.fraction_of("A"), 0.4);
        assert_eq!(m.fraction_of("C"), 0.0);
    }

    #[test]
    fn rejects_bad_sum() {
        assert!(Mixture::from_fractions(vec![("A".into(), 0.5), ("B".into(), 0.6)]).is_err());
    }

    #[test]
    fn rejects_negative_and_nan() {
        assert!(Mixture::from_fractions(vec![("A".into(), -0.1), ("B".into(), 1.1)]).is_err());
        assert!(Mixture::from_fractions(vec![("A".into(), f64::NAN), ("B".into(), 1.0)]).is_err());
    }

    #[test]
    fn rejects_duplicates_and_empty() {
        assert!(Mixture::from_fractions(vec![("A".into(), 0.5), ("A".into(), 0.5)]).is_err());
        assert_eq!(Mixture::from_fractions(vec![]), Err(ChemError::Empty));
    }

    #[test]
    fn weights_normalize() {
        let m = Mixture::from_weights(vec![("A".into(), 2.0), ("B".into(), 6.0)]).unwrap();
        assert!((m.fraction_of("A") - 0.25).abs() < 1e-12);
        assert!((m.fraction_of("B") - 0.75).abs() < 1e-12);
    }

    #[test]
    fn zero_weights_fail() {
        assert!(Mixture::from_weights(vec![("A".into(), 0.0), ("B".into(), 0.0)]).is_err());
    }

    #[test]
    fn pure_is_single_unit_fraction() {
        let m = Mixture::pure("Ar");
        assert_eq!(m.fraction_of("Ar"), 1.0);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn random_mixtures_sum_to_one() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        for _ in 0..50 {
            let m = Mixture::random(&["A", "B", "C", "D"], &mut rng).unwrap();
            let sum: f64 = m.parts().iter().map(|&(_, f)| f).sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(m.parts().iter().all(|&(_, f)| f >= 0.0));
        }
    }

    #[test]
    fn random_of_empty_fails() {
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(7);
        assert_eq!(Mixture::random(&[], &mut rng), Err(ChemError::Empty));
    }

    #[test]
    fn fractions_for_gives_label_layout() {
        let m = Mixture::from_fractions(vec![("N2".into(), 0.7), ("O2".into(), 0.3)]).unwrap();
        assert_eq!(m.fractions_for(&["O2", "H2O", "N2"]), vec![0.3, 0.0, 0.7]);
    }

    #[test]
    fn iteration_preserves_order() {
        let m = Mixture::from_fractions(vec![("B".into(), 0.5), ("A".into(), 0.5)]).unwrap();
        let names: Vec<&str> = m.names();
        assert_eq!(names, vec!["B", "A"]);
    }
}
