//! Chemical compounds.

use serde::{Deserialize, Serialize};

/// A chemical compound with a display name, a molecular formula and its
/// molar mass in g/mol.
///
/// # Example
///
/// ```
/// use chem::Compound;
///
/// let water = Compound::new("H2O", "H2O", 18.015);
/// assert_eq!(water.name(), "H2O");
/// assert!((water.molar_mass() - 18.015).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Compound {
    name: String,
    formula: String,
    molar_mass: f64,
}

impl Compound {
    /// Creates a compound.
    ///
    /// # Panics
    ///
    /// Panics if `molar_mass` is not strictly positive and finite
    /// (compound definitions are static library data; invalid mass is a
    /// programming error).
    pub fn new(name: impl Into<String>, formula: impl Into<String>, molar_mass: f64) -> Self {
        assert!(
            molar_mass.is_finite() && molar_mass > 0.0,
            "molar mass must be positive, got {molar_mass}"
        );
        Self {
            name: name.into(),
            formula: formula.into(),
            molar_mass,
        }
    }

    /// Display name (also the key used in libraries and mixtures).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Molecular formula.
    pub fn formula(&self) -> &str {
        &self.formula
    }

    /// Molar mass in g/mol.
    pub fn molar_mass(&self) -> f64 {
        self.molar_mass
    }
}

impl std::fmt::Display for Compound {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.name, self.formula)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors() {
        let c = Compound::new("Nitrogen", "N2", 28.014);
        assert_eq!(c.name(), "Nitrogen");
        assert_eq!(c.formula(), "N2");
        assert_eq!(c.molar_mass(), 28.014);
    }

    #[test]
    fn display_includes_formula() {
        let c = Compound::new("Water", "H2O", 18.015);
        assert_eq!(c.to_string(), "Water (H2O)");
    }

    #[test]
    #[should_panic(expected = "molar mass")]
    fn rejects_non_positive_mass() {
        let _ = Compound::new("Bad", "X", 0.0);
    }
}
