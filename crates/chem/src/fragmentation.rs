//! Electron-ionization fragmentation patterns for process gases.
//!
//! Each gas decays under ionization into a characteristic set of fragment
//! ions ("depending on the molecules contained in the sample", paper
//! §II.A). The patterns below are hand-encoded, NIST-style relative
//! intensities (base peak = 100) for the gases a miniaturized in-process
//! mass spectrometer typically monitors. Absolute accuracy of the values
//! is not load-bearing — the toolchain only requires realistic, distinct,
//! partially overlapping patterns (e.g. N₂/CO both at m/z 28, O₂ fragment
//! at 16 overlapping H₂O fragment ions).

use serde::{Deserialize, Serialize};
use spectrum::LineSpectrum;

use crate::{ChemError, Compound};

/// The fragmentation pattern of one gas: its compound identity, fragment
/// sticks (m/z, relative intensity with base peak 100) and the relative
/// ionization sensitivity (how strongly the instrument responds per unit
/// partial pressure, relative to N₂ = 1.0).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FragmentPattern {
    compound: Compound,
    sticks: Vec<(f64, f64)>,
    sensitivity: f64,
}

impl FragmentPattern {
    /// Creates a pattern.
    ///
    /// # Errors
    ///
    /// Returns [`ChemError::InvalidFraction`] if `sensitivity` is not
    /// strictly positive or any stick intensity is invalid, or
    /// [`ChemError::Empty`] if there are no sticks.
    pub fn new(
        compound: Compound,
        sticks: Vec<(f64, f64)>,
        sensitivity: f64,
    ) -> Result<Self, ChemError> {
        if sticks.is_empty() {
            return Err(ChemError::Empty);
        }
        if !(sensitivity.is_finite() && sensitivity > 0.0) {
            return Err(ChemError::InvalidFraction(format!(
                "sensitivity must be positive, got {sensitivity}"
            )));
        }
        for &(mz, i) in &sticks {
            if !(mz.is_finite() && mz > 0.0 && i.is_finite() && i >= 0.0) {
                return Err(ChemError::InvalidFraction(format!(
                    "invalid stick ({mz}, {i})"
                )));
            }
        }
        Ok(Self {
            compound,
            sticks,
            sensitivity,
        })
    }

    /// The compound this pattern belongs to.
    pub fn compound(&self) -> &Compound {
        &self.compound
    }

    /// Fragment sticks as `(m/z, relative intensity)` with base peak 100.
    pub fn sticks(&self) -> &[(f64, f64)] {
        &self.sticks
    }

    /// Relative ionization sensitivity (N₂ = 1.0).
    pub fn sensitivity(&self) -> f64 {
        self.sensitivity
    }

    /// The pattern as a [`LineSpectrum`] scaled by the sensitivity, i.e.
    /// the instrument response to a unit partial pressure of this gas.
    pub fn response_spectrum(&self) -> LineSpectrum {
        LineSpectrum::from_sticks(
            self.sticks
                .iter()
                .map(|&(mz, i)| (mz, i * self.sensitivity / 100.0))
                .collect(),
        )
        .expect("patterns are validated at construction")
    }
}

/// A library of gas fragmentation patterns keyed by compound name.
///
/// # Example
///
/// ```
/// use chem::fragmentation::GasLibrary;
///
/// let lib = GasLibrary::standard();
/// let co2 = lib.get("CO2").expect("CO2 is in the standard library");
/// assert_eq!(co2.sticks()[0].0, 12.0);
/// assert!(lib.names().len() >= 14);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GasLibrary {
    patterns: Vec<FragmentPattern>,
}

impl GasLibrary {
    /// An empty library.
    pub fn new() -> Self {
        Self {
            patterns: Vec::new(),
        }
    }

    /// The standard 16-gas library used throughout the workspace.
    ///
    /// Fragment values follow the familiar EI-70 eV patterns: molecular
    /// ions, doubly charged species (e.g. Ar²⁺ at m/z 20) and the common
    /// fragment ions. Sensitivities are typical relative ion-gauge values.
    pub fn standard() -> Self {
        let mut lib = Self::new();
        let mut add = |name: &str, formula: &str, mass: f64, sens: f64, sticks: &[(f64, f64)]| {
            let pattern = FragmentPattern::new(
                Compound::new(name, formula, mass),
                sticks.to_vec(),
                sens,
            )
            .expect("static library data is valid");
            lib.insert(pattern);
        };
        add("H2", "H2", 2.016, 0.44, &[(2.0, 100.0), (1.0, 2.1)]);
        add("He", "He", 4.003, 0.14, &[(4.0, 100.0)]);
        add(
            "CH4",
            "CH4",
            16.043,
            1.40,
            &[
                (16.0, 100.0),
                (15.0, 85.8),
                (14.0, 15.6),
                (13.0, 7.8),
                (12.0, 2.4),
                (1.0, 3.4),
            ],
        );
        add(
            "NH3",
            "NH3",
            17.031,
            1.30,
            &[(17.0, 100.0), (16.0, 80.1), (15.0, 7.5), (14.0, 2.2)],
        );
        add(
            "H2O",
            "H2O",
            18.015,
            1.00,
            &[(18.0, 100.0), (17.0, 21.2), (16.0, 0.9), (1.0, 0.3)],
        );
        add("Ne", "Ne", 20.180, 0.23, &[(20.0, 100.0), (22.0, 9.2), (10.0, 0.3)]);
        add(
            "C2H6",
            "C2H6",
            30.070,
            2.60,
            &[
                (28.0, 100.0),
                (27.0, 33.3),
                (30.0, 26.2),
                (29.0, 21.7),
                (26.0, 23.0),
                (25.0, 3.5),
                (15.0, 4.4),
                (14.0, 3.0),
            ],
        );
        add(
            "N2",
            "N2",
            28.014,
            1.00,
            &[(28.0, 100.0), (14.0, 7.2), (29.0, 0.8)],
        );
        add(
            "CO",
            "CO",
            28.010,
            1.05,
            &[(28.0, 100.0), (12.0, 4.7), (16.0, 1.7), (29.0, 1.2)],
        );
        add(
            "NO",
            "NO",
            30.006,
            1.20,
            &[(30.0, 100.0), (14.0, 7.5), (15.0, 2.4), (16.0, 1.5)],
        );
        add("O2", "O2", 31.998, 0.86, &[(32.0, 100.0), (16.0, 11.4), (34.0, 0.4)]);
        add(
            "H2S",
            "H2S",
            34.081,
            2.20,
            &[(34.0, 100.0), (33.0, 42.0), (32.0, 44.4), (35.0, 2.5), (36.0, 4.2)],
        );
        add("Ar", "Ar", 39.948, 1.20, &[(40.0, 100.0), (20.0, 14.6), (36.0, 0.3)]);
        add(
            "CO2",
            "CO2",
            44.009,
            1.40,
            &[(12.0, 6.0), (16.0, 8.5), (22.0, 1.2), (28.0, 11.4), (44.0, 100.0), (45.0, 1.2)],
        );
        add(
            "N2O",
            "N2O",
            44.013,
            1.30,
            &[(44.0, 100.0), (30.0, 31.1), (28.0, 10.8), (14.0, 12.9), (16.0, 5.0)],
        );
        add(
            "C3H8",
            "C3H8",
            44.097,
            3.70,
            &[
                (29.0, 100.0),
                (28.0, 59.1),
                (44.0, 27.4),
                (27.0, 37.9),
                (43.0, 22.3),
                (39.0, 16.2),
                (41.0, 13.4),
                (15.0, 5.4),
            ],
        );
        lib
    }

    /// Inserts (or replaces) a pattern.
    pub fn insert(&mut self, pattern: FragmentPattern) {
        if let Some(existing) = self
            .patterns
            .iter_mut()
            .find(|p| p.compound().name() == pattern.compound().name())
        {
            *existing = pattern;
        } else {
            self.patterns.push(pattern);
        }
    }

    /// Looks up a pattern by compound name.
    pub fn get(&self, name: &str) -> Option<&FragmentPattern> {
        self.patterns.iter().find(|p| p.compound().name() == name)
    }

    /// Looks up a pattern, turning a miss into an error.
    ///
    /// # Errors
    ///
    /// Returns [`ChemError::UnknownCompound`] if `name` is not present.
    pub fn require(&self, name: &str) -> Result<&FragmentPattern, ChemError> {
        self.get(name)
            .ok_or_else(|| ChemError::UnknownCompound(name.to_string()))
    }

    /// All compound names in insertion order.
    pub fn names(&self) -> Vec<&str> {
        self.patterns
            .iter()
            .map(|p| p.compound().name())
            .collect()
    }

    /// Number of patterns.
    pub fn len(&self) -> usize {
        self.patterns.len()
    }

    /// Returns `true` if the library holds no patterns.
    pub fn is_empty(&self) -> bool {
        self.patterns.is_empty()
    }

    /// Iterator over the patterns.
    pub fn iter(&self) -> std::slice::Iter<'_, FragmentPattern> {
        self.patterns.iter()
    }
}

impl Default for GasLibrary {
    fn default() -> Self {
        Self::new()
    }
}

impl<'a> IntoIterator for &'a GasLibrary {
    type Item = &'a FragmentPattern;
    type IntoIter = std::slice::Iter<'a, FragmentPattern>;

    fn into_iter(self) -> Self::IntoIter {
        self.patterns.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_library_has_sixteen_gases() {
        let lib = GasLibrary::standard();
        assert_eq!(lib.len(), 16);
        for name in ["H2", "He", "CH4", "NH3", "H2O", "N2", "O2", "Ar", "CO2", "CO"] {
            assert!(lib.get(name).is_some(), "{name} missing");
        }
    }

    #[test]
    fn base_peaks_are_100() {
        for pattern in &GasLibrary::standard() {
            let max = pattern
                .sticks()
                .iter()
                .map(|&(_, i)| i)
                .fold(f64::MIN, f64::max);
            assert_eq!(max, 100.0, "{}", pattern.compound().name());
        }
    }

    #[test]
    fn n2_and_co_overlap_at_28() {
        let lib = GasLibrary::standard();
        let n2 = lib.get("N2").unwrap().response_spectrum();
        let co = lib.get("CO").unwrap().response_spectrum();
        assert!(n2.intensity_at(28.0) > 0.0);
        assert!(co.intensity_at(28.0) > 0.0);
    }

    #[test]
    fn response_spectrum_scales_by_sensitivity() {
        let lib = GasLibrary::standard();
        let ar = lib.get("Ar").unwrap();
        let spec = ar.response_spectrum();
        assert!((spec.intensity_at(40.0) - ar.sensitivity()).abs() < 1e-12);
    }

    #[test]
    fn require_reports_unknown() {
        let lib = GasLibrary::standard();
        assert!(matches!(
            lib.require("Xe"),
            Err(ChemError::UnknownCompound(_))
        ));
        assert!(lib.require("Ar").is_ok());
    }

    #[test]
    fn insert_replaces_same_name() {
        let mut lib = GasLibrary::standard();
        let n = lib.len();
        let replacement = FragmentPattern::new(
            Compound::new("Ar", "Ar", 39.948),
            vec![(40.0, 100.0)],
            2.0,
        )
        .unwrap();
        lib.insert(replacement);
        assert_eq!(lib.len(), n);
        assert_eq!(lib.get("Ar").unwrap().sensitivity(), 2.0);
    }

    #[test]
    fn pattern_validation() {
        let c = Compound::new("X", "X", 10.0);
        assert!(FragmentPattern::new(c.clone(), vec![], 1.0).is_err());
        assert!(FragmentPattern::new(c.clone(), vec![(10.0, 100.0)], 0.0).is_err());
        assert!(FragmentPattern::new(c.clone(), vec![(-1.0, 100.0)], 1.0).is_err());
        assert!(FragmentPattern::new(c, vec![(10.0, -5.0)], 1.0).is_err());
    }

    #[test]
    fn all_fragments_within_mass_range() {
        // No fragment can exceed the molecular mass by more than isotope room.
        for pattern in &GasLibrary::standard() {
            for &(mz, _) in pattern.sticks() {
                assert!(
                    mz <= pattern.compound().molar_mass() + 2.5,
                    "{} fragment {mz} above molar mass",
                    pattern.compound().name()
                );
            }
        }
    }
}
