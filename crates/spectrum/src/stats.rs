//! Error and regression metrics shared by every evaluation in the
//! workspace (MAE is the paper's headline metric; MSE is used for the
//! NMR comparison; the standard deviation backs the LSTM plateau claim).

use crate::SpectrumError;

/// Arithmetic mean.
///
/// # Errors
///
/// Returns [`SpectrumError::Empty`] for an empty slice.
pub fn mean(values: &[f64]) -> Result<f64, SpectrumError> {
    if values.is_empty() {
        return Err(SpectrumError::Empty);
    }
    Ok(values.iter().sum::<f64>() / values.len() as f64)
}

/// Population standard deviation.
///
/// # Errors
///
/// Returns [`SpectrumError::Empty`] for an empty slice.
pub fn std_dev(values: &[f64]) -> Result<f64, SpectrumError> {
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    Ok(var.sqrt())
}

/// Mean absolute error between predictions and targets — the loss function
/// and headline quality metric of the paper's MS study.
///
/// # Errors
///
/// Returns [`SpectrumError::ShapeMismatch`] on length mismatch or
/// [`SpectrumError::Empty`] for empty inputs.
pub fn mae(predictions: &[f64], targets: &[f64]) -> Result<f64, SpectrumError> {
    check(predictions, targets)?;
    Ok(predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t).abs())
        .sum::<f64>()
        / predictions.len() as f64)
}

/// Mean squared error — the paper's NMR comparison metric.
///
/// # Errors
///
/// Returns [`SpectrumError::ShapeMismatch`] on length mismatch or
/// [`SpectrumError::Empty`] for empty inputs.
pub fn mse(predictions: &[f64], targets: &[f64]) -> Result<f64, SpectrumError> {
    check(predictions, targets)?;
    Ok(predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t) * (p - t))
        .sum::<f64>()
        / predictions.len() as f64)
}

/// Root mean squared error.
///
/// # Errors
///
/// Same conditions as [`mse`].
pub fn rmse(predictions: &[f64], targets: &[f64]) -> Result<f64, SpectrumError> {
    Ok(mse(predictions, targets)?.sqrt())
}

/// Pearson correlation coefficient.
///
/// # Errors
///
/// Returns [`SpectrumError::ShapeMismatch`] on length mismatch,
/// [`SpectrumError::Empty`] for empty inputs, or
/// [`SpectrumError::InvalidValue`] if either input is constant.
pub fn pearson(a: &[f64], b: &[f64]) -> Result<f64, SpectrumError> {
    check(a, b)?;
    let ma = mean(a)?;
    let mb = mean(b)?;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return Err(SpectrumError::InvalidValue(
            "correlation of a constant sequence is undefined".into(),
        ));
    }
    Ok(cov / (va.sqrt() * vb.sqrt()))
}

/// Coefficient of determination R².
///
/// # Errors
///
/// Returns [`SpectrumError::ShapeMismatch`] on length mismatch,
/// [`SpectrumError::Empty`] for empty inputs, or
/// [`SpectrumError::InvalidValue`] if targets are constant.
pub fn r_squared(predictions: &[f64], targets: &[f64]) -> Result<f64, SpectrumError> {
    check(predictions, targets)?;
    let mt = mean(targets)?;
    let ss_tot: f64 = targets.iter().map(|t| (t - mt) * (t - mt)).sum();
    if ss_tot == 0.0 {
        return Err(SpectrumError::InvalidValue(
            "r-squared of constant targets is undefined".into(),
        ));
    }
    let ss_res: f64 = predictions
        .iter()
        .zip(targets)
        .map(|(p, t)| (p - t) * (p - t))
        .sum();
    Ok(1.0 - ss_res / ss_tot)
}

/// Per-output-column MAE for batched predictions laid out row-major:
/// `predictions[i * width + j]` is output `j` of sample `i`. Used to
/// reproduce the per-substance error bars of Figures 5–7.
///
/// # Errors
///
/// Returns [`SpectrumError::ShapeMismatch`] if the flattened inputs differ
/// or are not multiples of `width`, or [`SpectrumError::Empty`] if `width`
/// is zero or the inputs are empty.
pub fn per_column_mae(
    predictions: &[f64],
    targets: &[f64],
    width: usize,
) -> Result<Vec<f64>, SpectrumError> {
    if width == 0 || predictions.is_empty() {
        return Err(SpectrumError::Empty);
    }
    if predictions.len() != targets.len() || !predictions.len().is_multiple_of(width) {
        return Err(SpectrumError::ShapeMismatch {
            left: predictions.len(),
            right: targets.len(),
        });
    }
    let rows = predictions.len() / width;
    let mut out = vec![0.0; width];
    for r in 0..rows {
        for (c, slot) in out.iter_mut().enumerate() {
            *slot += (predictions[r * width + c] - targets[r * width + c]).abs();
        }
    }
    for v in &mut out {
        *v /= rows as f64;
    }
    Ok(out)
}

fn check(a: &[f64], b: &[f64]) -> Result<(), SpectrumError> {
    if a.is_empty() {
        return Err(SpectrumError::Empty);
    }
    if a.len() != b.len() {
        return Err(SpectrumError::ShapeMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]).unwrap(), 2.0);
        assert!((std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]).unwrap() - 2.0).abs() < 1e-12);
        assert!(mean(&[]).is_err());
    }

    #[test]
    fn mae_basic() {
        assert_eq!(mae(&[1.0, 2.0], &[2.0, 0.0]).unwrap(), 1.5);
        assert_eq!(mae(&[1.0], &[1.0]).unwrap(), 0.0);
    }

    #[test]
    fn mse_and_rmse() {
        assert_eq!(mse(&[0.0, 0.0], &[3.0, 4.0]).unwrap(), 12.5);
        assert!((rmse(&[0.0, 0.0], &[3.0, 4.0]).unwrap() - 12.5f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn mismatched_lengths_fail() {
        assert!(mae(&[1.0], &[1.0, 2.0]).is_err());
        assert!(mse(&[], &[]).is_err());
    }

    #[test]
    fn pearson_of_linear_relation_is_one() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        let c = [-2.0, -4.0, -6.0, -8.0];
        assert!((pearson(&a, &c).unwrap() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_of_constant_fails() {
        assert!(pearson(&[1.0, 1.0], &[1.0, 2.0]).is_err());
    }

    #[test]
    fn r_squared_perfect_fit() {
        let t = [1.0, 2.0, 3.0];
        assert!((r_squared(&t, &t).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r_squared_mean_predictor_is_zero() {
        let t = [1.0, 2.0, 3.0];
        let p = [2.0, 2.0, 2.0];
        assert!(r_squared(&p, &t).unwrap().abs() < 1e-12);
    }

    #[test]
    fn per_column_mae_splits_columns() {
        // Two samples, two outputs.
        let pred = [1.0, 0.0, 3.0, 0.0];
        let tgt = [0.0, 0.0, 1.0, 2.0];
        let cols = per_column_mae(&pred, &tgt, 2).unwrap();
        assert_eq!(cols, vec![1.5, 1.0]);
    }

    #[test]
    fn per_column_mae_validates() {
        assert!(per_column_mae(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0], 2).is_err());
        assert!(per_column_mae(&[], &[], 2).is_err());
        assert!(per_column_mae(&[1.0], &[1.0], 0).is_err());
    }
}
