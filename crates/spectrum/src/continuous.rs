//! Continuous (sampled) spectra on a uniform axis.

use serde::{Deserialize, Serialize};

use crate::{interp, SpectrumError, UniformAxis};

/// A spectrum sampled on a [`UniformAxis`].
///
/// This is what the paper's measuring devices produce (a continuous spectrum
/// with the desired resolution, Tool 3) and what the neural networks consume
/// as input vectors.
///
/// # Example
///
/// ```
/// use spectrum::{ContinuousSpectrum, UniformAxis};
///
/// # fn main() -> Result<(), spectrum::SpectrumError> {
/// let axis = UniformAxis::new(0.0, 1.0, 4)?;
/// let spec = ContinuousSpectrum::from_parts(axis, vec![0.0, 1.0, 2.0, 1.0])?;
/// assert_eq!(spec.max_intensity(), 2.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ContinuousSpectrum {
    axis: UniformAxis,
    intensities: Vec<f64>,
}

impl ContinuousSpectrum {
    /// A zero spectrum on `axis`.
    pub fn zeros(axis: UniformAxis) -> Self {
        Self {
            intensities: vec![0.0; axis.len()],
            axis,
        }
    }

    /// Builds a spectrum from an axis and matching intensity samples.
    ///
    /// # Errors
    ///
    /// Returns [`SpectrumError::ShapeMismatch`] if the lengths differ, or
    /// [`SpectrumError::InvalidValue`] if any sample is non-finite.
    pub fn from_parts(axis: UniformAxis, intensities: Vec<f64>) -> Result<Self, SpectrumError> {
        if axis.len() != intensities.len() {
            return Err(SpectrumError::ShapeMismatch {
                left: axis.len(),
                right: intensities.len(),
            });
        }
        if let Some(bad) = intensities.iter().find(|v| !v.is_finite()) {
            return Err(SpectrumError::InvalidValue(format!(
                "intensity {bad} is not finite"
            )));
        }
        Ok(Self { axis, intensities })
    }

    /// The axis this spectrum is sampled on.
    pub fn axis(&self) -> &UniformAxis {
        &self.axis
    }

    /// The intensity samples.
    pub fn intensities(&self) -> &[f64] {
        &self.intensities
    }

    /// Mutable access to the samples (noise models write in place).
    pub fn intensities_mut(&mut self) -> &mut [f64] {
        &mut self.intensities
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.intensities.len()
    }

    /// Returns `true` if the spectrum has no samples (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.intensities.is_empty()
    }

    /// Consumes the spectrum, returning its samples.
    pub fn into_intensities(self) -> Vec<f64> {
        self.intensities
    }

    /// Iterator over `(axis value, intensity)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (f64, f64)> + '_ {
        self.intensities
            .iter()
            .enumerate()
            .map(|(i, &y)| (self.axis.value_at(i), y))
    }

    /// Largest sample value (0.0 for an all-negative spectrum is *not*
    /// substituted; the true maximum is returned).
    ///
    /// # Panics
    ///
    /// Never panics: construction guarantees at least one finite sample.
    pub fn max_intensity(&self) -> f64 {
        self.intensities
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Sum of all samples.
    pub fn total_intensity(&self) -> f64 {
        self.intensities.iter().sum()
    }

    /// Trapezoidal integral over the axis.
    pub fn area(&self) -> f64 {
        if self.len() < 2 {
            return 0.0;
        }
        let inner: f64 = self.intensities[1..self.len() - 1].iter().sum();
        (inner + 0.5 * (self.intensities[0] + self.intensities[self.len() - 1]))
            * self.axis.step()
    }

    /// Index and axis value of the maximum sample.
    pub fn argmax(&self) -> (usize, f64) {
        let (idx, _) = self
            .intensities
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite intensities"))
            .expect("non-empty spectrum");
        (idx, self.axis.value_at(idx))
    }

    /// Adds `other` in place.
    ///
    /// # Errors
    ///
    /// Returns [`SpectrumError::ShapeMismatch`] if the axes differ.
    pub fn add_assign(&mut self, other: &ContinuousSpectrum) -> Result<(), SpectrumError> {
        if self.axis != other.axis {
            return Err(SpectrumError::ShapeMismatch {
                left: self.len(),
                right: other.len(),
            });
        }
        for (a, b) in self.intensities.iter_mut().zip(&other.intensities) {
            *a += b;
        }
        Ok(())
    }

    /// Adds `weight * other` in place.
    ///
    /// # Errors
    ///
    /// Returns [`SpectrumError::ShapeMismatch`] if the axes differ.
    pub fn add_scaled(
        &mut self,
        other: &ContinuousSpectrum,
        weight: f64,
    ) -> Result<(), SpectrumError> {
        if self.axis != other.axis {
            return Err(SpectrumError::ShapeMismatch {
                left: self.len(),
                right: other.len(),
            });
        }
        for (a, b) in self.intensities.iter_mut().zip(&other.intensities) {
            *a += weight * b;
        }
        Ok(())
    }

    /// Multiplies every sample by `factor` in place.
    pub fn scale(&mut self, factor: f64) {
        for v in &mut self.intensities {
            *v *= factor;
        }
    }

    /// A copy normalized so the maximum sample is `1.0`; unchanged if the
    /// maximum is not strictly positive.
    pub fn normalized_to_max(&self) -> Self {
        let max = self.max_intensity();
        let mut out = self.clone();
        if max > 0.0 {
            out.scale(1.0 / max);
        }
        out
    }

    /// A copy normalized to unit total intensity; unchanged if the total is
    /// not strictly positive.
    pub fn normalized_to_total(&self) -> Self {
        let total = self.total_intensity();
        let mut out = self.clone();
        if total > 0.0 {
            out.scale(1.0 / total);
        }
        out
    }

    /// Clamps negative samples to zero (detectors report non-negative
    /// counts; noise can push samples below zero).
    pub fn clamp_non_negative(&mut self) {
        for v in &mut self.intensities {
            if *v < 0.0 {
                *v = 0.0;
            }
        }
    }

    /// Linearly interpolated intensity at coordinate `x`; samples outside
    /// the axis return `0.0`.
    pub fn sample_at(&self, x: f64) -> f64 {
        interp::linear_at(&self.axis, &self.intensities, x)
    }

    /// Re-samples the spectrum onto a new axis by linear interpolation —
    /// the paper's requirement that "missing values would be interpolated
    /// when the resolution was changed" (§III.A).
    pub fn resampled(&self, axis: &UniformAxis) -> ContinuousSpectrum {
        let intensities = interp::resample(&self.axis, &self.intensities, axis);
        ContinuousSpectrum {
            axis: *axis,
            intensities,
        }
    }

    /// The spectrum's samples as `f32` (neural-network input precision).
    pub fn to_f32(&self) -> Vec<f32> {
        self.intensities.iter().map(|&v| v as f32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn axis4() -> UniformAxis {
        UniformAxis::new(0.0, 1.0, 4).unwrap()
    }

    fn spec(vals: Vec<f64>) -> ContinuousSpectrum {
        let axis = UniformAxis::new(0.0, 1.0, vals.len()).unwrap();
        ContinuousSpectrum::from_parts(axis, vals).unwrap()
    }

    #[test]
    fn construction_validates_shape_and_values() {
        assert!(ContinuousSpectrum::from_parts(axis4(), vec![0.0; 3]).is_err());
        assert!(ContinuousSpectrum::from_parts(axis4(), vec![0.0, 1.0, f64::NAN, 0.0]).is_err());
    }

    #[test]
    fn zeros_is_all_zero() {
        let z = ContinuousSpectrum::zeros(axis4());
        assert_eq!(z.total_intensity(), 0.0);
        assert_eq!(z.len(), 4);
    }

    #[test]
    fn add_scaled_accumulates() {
        let mut a = spec(vec![1.0, 2.0, 3.0]);
        let b = spec(vec![10.0, 10.0, 10.0]);
        a.add_scaled(&b, 0.1).unwrap();
        assert_eq!(a.intensities(), &[2.0, 3.0, 4.0]);
    }

    #[test]
    fn add_mismatched_axes_fails() {
        let mut a = spec(vec![1.0, 2.0, 3.0]);
        let b = spec(vec![1.0, 2.0]);
        assert!(a.add_assign(&b).is_err());
    }

    #[test]
    fn argmax_returns_axis_value() {
        let s = spec(vec![0.0, 5.0, 1.0]);
        assert_eq!(s.argmax(), (1, 1.0));
    }

    #[test]
    fn normalization_to_max() {
        let s = spec(vec![0.0, 4.0, 2.0]).normalized_to_max();
        assert_eq!(s.intensities(), &[0.0, 1.0, 0.5]);
    }

    #[test]
    fn normalization_of_zero_spectrum_is_identity() {
        let s = spec(vec![0.0, 0.0]).normalized_to_max();
        assert_eq!(s.intensities(), &[0.0, 0.0]);
        let t = spec(vec![0.0, 0.0]).normalized_to_total();
        assert_eq!(t.intensities(), &[0.0, 0.0]);
    }

    #[test]
    fn clamp_non_negative_zeroes_negatives() {
        let mut s = spec(vec![-1.0, 2.0, -0.5]);
        s.clamp_non_negative();
        assert_eq!(s.intensities(), &[0.0, 2.0, 0.0]);
    }

    #[test]
    fn area_matches_trapezoid() {
        // f(x) = x on [0, 3]: area = 4.5.
        let s = spec(vec![0.0, 1.0, 2.0, 3.0]);
        assert!((s.area() - 4.5).abs() < 1e-12);
    }

    #[test]
    fn resample_identity_axis_is_lossless() {
        let s = spec(vec![1.0, 4.0, 9.0, 16.0]);
        let r = s.resampled(s.axis());
        assert_eq!(r.intensities(), s.intensities());
    }

    #[test]
    fn resample_halved_resolution_interpolates() {
        let s = spec(vec![0.0, 1.0, 2.0, 3.0]); // axis 0..3 step 1
        let fine = UniformAxis::new(0.0, 0.5, 7).unwrap();
        let r = s.resampled(&fine);
        assert!((r.sample_at(0.5) - 0.5).abs() < 1e-12);
        assert!((r.sample_at(2.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn sample_outside_axis_is_zero() {
        let s = spec(vec![1.0, 1.0]);
        assert_eq!(s.sample_at(-1.0), 0.0);
        assert_eq!(s.sample_at(99.0), 0.0);
    }

    #[test]
    fn to_f32_converts_all_samples() {
        let s = spec(vec![1.5, 2.5]);
        assert_eq!(s.to_f32(), vec![1.5f32, 2.5f32]);
    }
}
