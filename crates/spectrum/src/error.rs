use std::fmt;

/// Error type for all fallible operations in this crate.
///
/// # Example
///
/// ```
/// use spectrum::{SpectrumError, UniformAxis};
///
/// let err = UniformAxis::from_range(1.0, 0.0, 0.1).unwrap_err();
/// assert!(matches!(err, SpectrumError::InvalidAxis(_)));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SpectrumError {
    /// An axis was constructed from an empty or inverted range, or a
    /// non-positive step.
    InvalidAxis(String),
    /// A peak shape parameter (width, mixing fraction) was out of range.
    InvalidPeak(String),
    /// A stick or sample value was non-finite or otherwise invalid.
    InvalidValue(String),
    /// Two operands had mismatched axes or lengths.
    ShapeMismatch {
        /// Length or description of the left operand.
        left: usize,
        /// Length or description of the right operand.
        right: usize,
    },
    /// A linear system was singular or ill-conditioned beyond recovery.
    Singular,
    /// The input collection was empty where at least one element is needed.
    Empty,
}

impl fmt::Display for SpectrumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SpectrumError::InvalidAxis(msg) => write!(f, "invalid axis: {msg}"),
            SpectrumError::InvalidPeak(msg) => write!(f, "invalid peak shape: {msg}"),
            SpectrumError::InvalidValue(msg) => write!(f, "invalid value: {msg}"),
            SpectrumError::ShapeMismatch { left, right } => {
                write!(f, "shape mismatch: {left} vs {right}")
            }
            SpectrumError::Singular => write!(f, "linear system is singular"),
            SpectrumError::Empty => write!(f, "input collection is empty"),
        }
    }
}

impl std::error::Error for SpectrumError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_concise() {
        let err = SpectrumError::InvalidAxis("step must be positive".into());
        let text = err.to_string();
        assert!(text.starts_with("invalid axis"));
        assert!(!text.ends_with('.'));
    }

    #[test]
    fn error_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SpectrumError>();
    }

    #[test]
    fn shape_mismatch_reports_both_sides() {
        let err = SpectrumError::ShapeMismatch { left: 3, right: 5 };
        assert_eq!(err.to_string(), "shape mismatch: 3 vs 5");
    }
}
