//! Uniformly sampled coordinate axes (m/z for MS, ppm for NMR).

use serde::{Deserialize, Serialize};

use crate::SpectrumError;

/// A uniformly sampled axis described by a start value, a step and a length.
///
/// Both the mass spectrometer (m/z axis with configurable step size and
/// range, per the paper's MMS prototype) and the NMR spectrometer (chemical
/// shift in ppm) sample their spectra on such a grid.
///
/// # Example
///
/// ```
/// use spectrum::UniformAxis;
///
/// # fn main() -> Result<(), spectrum::SpectrumError> {
/// // The paper's MS axis: m/z 1..=100 with step 0.25 -> 397 points.
/// let axis = UniformAxis::from_range(1.0, 100.0, 0.25)?;
/// assert_eq!(axis.len(), 397);
/// assert_eq!(axis.value_at(0), 1.0);
/// assert_eq!(axis.value_at(axis.len() - 1), 100.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UniformAxis {
    start: f64,
    step: f64,
    len: usize,
}

impl UniformAxis {
    /// Creates an axis with an explicit start, step and number of samples.
    ///
    /// # Errors
    ///
    /// Returns [`SpectrumError::InvalidAxis`] if `step` is not strictly
    /// positive and finite, `start` is not finite, or `len` is zero.
    pub fn new(start: f64, step: f64, len: usize) -> Result<Self, SpectrumError> {
        if !start.is_finite() {
            return Err(SpectrumError::InvalidAxis("start must be finite".into()));
        }
        if !(step.is_finite() && step > 0.0) {
            return Err(SpectrumError::InvalidAxis(
                "step must be positive and finite".into(),
            ));
        }
        if len == 0 {
            return Err(SpectrumError::InvalidAxis("len must be non-zero".into()));
        }
        Ok(Self { start, step, len })
    }

    /// Creates an axis covering `[start, stop]` inclusively with the given
    /// step. The last sample is the largest grid point `<= stop + step/2`
    /// (so that e.g. `1..=100` step `0.25` yields exactly 397 points).
    ///
    /// # Errors
    ///
    /// Returns [`SpectrumError::InvalidAxis`] if `stop <= start` or `step`
    /// is not strictly positive and finite.
    pub fn from_range(start: f64, stop: f64, step: f64) -> Result<Self, SpectrumError> {
        // NaN bounds must be rejected too, hence no plain `<=`.
        if stop.partial_cmp(&start) != Some(std::cmp::Ordering::Greater) {
            return Err(SpectrumError::InvalidAxis(format!(
                "stop ({stop}) must exceed start ({start})"
            )));
        }
        if !(step.is_finite() && step > 0.0) {
            return Err(SpectrumError::InvalidAxis(
                "step must be positive and finite".into(),
            ));
        }
        let len = ((stop - start) / step + 0.5).floor() as usize + 1;
        Self::new(start, step, len)
    }

    /// First axis value.
    pub fn start(&self) -> f64 {
        self.start
    }

    /// Distance between adjacent samples.
    pub fn step(&self) -> f64 {
        self.step
    }

    /// Number of samples on the axis.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the axis has no samples (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Last axis value.
    pub fn stop(&self) -> f64 {
        self.value_at(self.len - 1)
    }

    /// The axis value at sample `index`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.len()`.
    pub fn value_at(&self, index: usize) -> f64 {
        assert!(index < self.len, "axis index {index} out of range {}", self.len);
        self.start + self.step * index as f64
    }

    /// All axis values as a freshly allocated vector.
    pub fn values(&self) -> Vec<f64> {
        (0..self.len).map(|i| self.value_at(i)).collect()
    }

    /// Fractional sample position of coordinate `x` (may be out of range).
    pub fn position_of(&self, x: f64) -> f64 {
        (x - self.start) / self.step
    }

    /// Index of the sample nearest to `x`, or `None` if `x` lies outside
    /// the axis by more than half a step.
    pub fn nearest_index(&self, x: f64) -> Option<usize> {
        let pos = self.position_of(x);
        if pos < -0.5 || pos > self.len as f64 - 0.5 {
            return None;
        }
        Some(pos.round().clamp(0.0, (self.len - 1) as f64) as usize)
    }

    /// Returns `true` if `x` falls inside the closed interval
    /// `[start, stop]` spanned by the axis.
    pub fn contains(&self, x: f64) -> bool {
        x >= self.start && x <= self.stop()
    }

    /// A new axis over the same range but with a different step — used by
    /// the MS pipeline when the spectrometer resolution is reconfigured
    /// and inputs must be re-interpolated.
    ///
    /// # Errors
    ///
    /// Returns [`SpectrumError::InvalidAxis`] under the same conditions as
    /// [`UniformAxis::from_range`].
    pub fn with_step(&self, step: f64) -> Result<Self, SpectrumError> {
        Self::from_range(self.start, self.stop(), step)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_range_inclusive_endpoint() {
        let axis = UniformAxis::from_range(0.0, 1.0, 0.25).unwrap();
        assert_eq!(axis.len(), 5);
        assert_eq!(axis.stop(), 1.0);
    }

    #[test]
    fn paper_ms_axis_has_397_points() {
        let axis = UniformAxis::from_range(1.0, 100.0, 0.25).unwrap();
        assert_eq!(axis.len(), 397);
    }

    #[test]
    fn nmr_axis_has_1700_points() {
        // 0..=12 ppm at step such that len == 1700 (see DESIGN.md §5).
        let axis = UniformAxis::new(0.0, 12.0 / 1699.0, 1700).unwrap();
        assert_eq!(axis.len(), 1700);
        assert!((axis.stop() - 12.0).abs() < 1e-9);
    }

    #[test]
    fn rejects_bad_parameters() {
        assert!(UniformAxis::new(0.0, 0.0, 10).is_err());
        assert!(UniformAxis::new(0.0, -1.0, 10).is_err());
        assert!(UniformAxis::new(f64::NAN, 1.0, 10).is_err());
        assert!(UniformAxis::new(0.0, 1.0, 0).is_err());
        assert!(UniformAxis::from_range(5.0, 5.0, 1.0).is_err());
        assert!(UniformAxis::from_range(5.0, 4.0, 1.0).is_err());
    }

    #[test]
    fn nearest_index_handles_edges() {
        let axis = UniformAxis::new(10.0, 1.0, 5).unwrap(); // 10..14
        assert_eq!(axis.nearest_index(10.0), Some(0));
        assert_eq!(axis.nearest_index(14.4), Some(4));
        assert_eq!(axis.nearest_index(9.6), Some(0));
        assert_eq!(axis.nearest_index(9.4), None);
        assert_eq!(axis.nearest_index(14.6), None);
        assert_eq!(axis.nearest_index(12.49), Some(2));
    }

    #[test]
    fn values_match_value_at() {
        let axis = UniformAxis::new(-1.0, 0.5, 7).unwrap();
        let vals = axis.values();
        assert_eq!(vals.len(), 7);
        for (i, v) in vals.iter().enumerate() {
            assert_eq!(*v, axis.value_at(i));
        }
    }

    #[test]
    fn with_step_preserves_range() {
        let axis = UniformAxis::from_range(1.0, 100.0, 0.25).unwrap();
        let coarse = axis.with_step(0.5).unwrap();
        assert_eq!(coarse.start(), 1.0);
        assert!((coarse.stop() - 100.0).abs() < 1e-9);
        assert_eq!(coarse.len(), 199);
    }

    #[test]
    fn contains_respects_bounds() {
        let axis = UniformAxis::new(2.0, 0.5, 3).unwrap(); // 2.0, 2.5, 3.0
        assert!(axis.contains(2.0));
        assert!(axis.contains(3.0));
        assert!(axis.contains(2.7));
        assert!(!axis.contains(1.99));
        assert!(!axis.contains(3.01));
    }

    #[test]
    fn copy_equality() {
        let axis = UniformAxis::new(1.0, 0.25, 397).unwrap();
        let copy = axis;
        assert_eq!(axis, copy);
    }
}
