//! Spectral data structures and signal-processing substrate.
//!
//! This crate is the foundation of the `spectro-ai` workspace. It provides
//! everything the mass-spectrometry and NMR simulators build on:
//!
//! * [`UniformAxis`] — a uniformly sampled coordinate axis (m/z or ppm);
//! * [`LineSpectrum`] — an ideal "stick" spectrum of discrete lines;
//! * [`ContinuousSpectrum`] — a sampled spectrum on an axis;
//! * [`PeakShape`] — Gaussian / Lorentzian / Lorentz–Gauss peak profiles
//!   used to render line spectra into continuous ones;
//! * [`noise`] — additive, shot, drift and spike noise models;
//! * [`baseline`] — polynomial baseline estimation and removal;
//! * [`fft`] — a radix-2 FFT and free-induction-decay helpers;
//! * [`linalg`] — small dense linear algebra (solvers, least squares);
//! * [`stats`] — regression/error metrics shared by all evaluations.
//!
//! # Example
//!
//! Render two sticks into a continuous spectrum with Gaussian peaks:
//!
//! ```
//! use spectrum::{LineSpectrum, PeakShape, UniformAxis};
//!
//! # fn main() -> Result<(), spectrum::SpectrumError> {
//! let axis = UniformAxis::from_range(0.0, 10.0, 0.1)?;
//! let line = LineSpectrum::from_sticks(vec![(3.0, 1.0), (7.0, 0.5)])?;
//! let shape = PeakShape::gaussian(0.4)?;
//! let cont = line.render(&axis, &shape);
//! assert_eq!(cont.len(), axis.len());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod axis;
pub mod baseline;
pub mod continuous;
pub mod fft;
pub mod interp;
pub mod line;
pub mod linalg;
pub mod noise;
pub mod peak;
pub mod peaks;
pub mod stats;

mod error;

pub use axis::UniformAxis;
pub use continuous::ContinuousSpectrum;
pub use error::SpectrumError;
pub use line::LineSpectrum;
pub use peak::PeakShape;
