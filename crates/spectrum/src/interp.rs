//! Linear interpolation and resampling of sampled signals.
//!
//! The paper's MS prototype has a configurable step size and range on the
//! m/z axis; "missing values would be interpolated when the resolution was
//! changed" so that one trained network serves several instrument
//! configurations. These helpers implement that interpolation.

use crate::UniformAxis;

/// Linearly interpolated value of `samples` (on `axis`) at coordinate `x`.
/// Coordinates outside the axis return `0.0`.
///
/// # Example
///
/// ```
/// use spectrum::{interp, UniformAxis};
///
/// # fn main() -> Result<(), spectrum::SpectrumError> {
/// let axis = UniformAxis::new(0.0, 1.0, 3)?;
/// let y = interp::linear_at(&axis, &[0.0, 2.0, 4.0], 1.5);
/// assert_eq!(y, 3.0);
/// # Ok(())
/// # }
/// ```
///
/// # Panics
///
/// Panics if `samples.len() != axis.len()`.
pub fn linear_at(axis: &UniformAxis, samples: &[f64], x: f64) -> f64 {
    assert_eq!(
        samples.len(),
        axis.len(),
        "samples must match axis length"
    );
    let pos = axis.position_of(x);
    if pos < 0.0 || pos > (axis.len() - 1) as f64 {
        return 0.0;
    }
    let lo = pos.floor() as usize;
    if lo + 1 >= axis.len() {
        return samples[axis.len() - 1];
    }
    let frac = pos - lo as f64;
    samples[lo] * (1.0 - frac) + samples[lo + 1] * frac
}

/// Re-samples `samples` from `src` onto `dst` by linear interpolation.
/// Destination points outside the source range become `0.0`.
///
/// # Panics
///
/// Panics if `samples.len() != src.len()`.
pub fn resample(src: &UniformAxis, samples: &[f64], dst: &UniformAxis) -> Vec<f64> {
    (0..dst.len())
        .map(|i| linear_at(src, samples, dst.value_at(i)))
        .collect()
}

/// Fills `NaN` gaps in `samples` by linear interpolation between the nearest
/// finite neighbours (edge gaps are filled with the nearest finite value).
/// Returns the number of samples repaired. All-NaN input is left unchanged.
pub fn fill_gaps(samples: &mut [f64]) -> usize {
    let n = samples.len();
    let mut fixed = 0;
    let mut i = 0;
    while i < n {
        if samples[i].is_finite() {
            i += 1;
            continue;
        }
        // Find the run of non-finite samples [i, j).
        let mut j = i;
        while j < n && !samples[j].is_finite() {
            j += 1;
        }
        let left = if i > 0 { Some(samples[i - 1]) } else { None };
        let right = if j < n { Some(samples[j]) } else { None };
        match (left, right) {
            (Some(l), Some(r)) => {
                let span = (j - i + 1) as f64;
                for (k, slot) in samples[i..j].iter_mut().enumerate() {
                    let frac = (k + 1) as f64 / span;
                    *slot = l * (1.0 - frac) + r * frac;
                    fixed += 1;
                }
            }
            (Some(l), None) => {
                for slot in samples[i..j].iter_mut() {
                    *slot = l;
                    fixed += 1;
                }
            }
            (None, Some(r)) => {
                for slot in samples[i..j].iter_mut() {
                    *slot = r;
                    fixed += 1;
                }
            }
            (None, None) => return fixed, // all NaN: nothing to anchor on
        }
        i = j;
    }
    fixed
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_at_hits_sample_points() {
        let axis = UniformAxis::new(10.0, 2.0, 3).unwrap();
        let samples = [1.0, 5.0, 9.0];
        assert_eq!(linear_at(&axis, &samples, 10.0), 1.0);
        assert_eq!(linear_at(&axis, &samples, 12.0), 5.0);
        assert_eq!(linear_at(&axis, &samples, 14.0), 9.0);
    }

    #[test]
    fn linear_at_midpoints() {
        let axis = UniformAxis::new(0.0, 1.0, 2).unwrap();
        assert_eq!(linear_at(&axis, &[0.0, 10.0], 0.25), 2.5);
    }

    #[test]
    fn out_of_range_is_zero() {
        let axis = UniformAxis::new(0.0, 1.0, 2).unwrap();
        assert_eq!(linear_at(&axis, &[5.0, 5.0], -0.01), 0.0);
        assert_eq!(linear_at(&axis, &[5.0, 5.0], 1.01), 0.0);
    }

    #[test]
    fn resample_roundtrip_on_same_axis() {
        let axis = UniformAxis::new(0.0, 0.5, 5).unwrap();
        let samples = vec![1.0, 2.0, 4.0, 8.0, 16.0];
        assert_eq!(resample(&axis, &samples, &axis), samples);
    }

    #[test]
    fn resample_upsamples_linearly() {
        let src = UniformAxis::new(0.0, 2.0, 3).unwrap(); // 0,2,4
        let dst = UniformAxis::new(0.0, 1.0, 5).unwrap(); // 0..4
        let out = resample(&src, &[0.0, 4.0, 8.0], &dst);
        assert_eq!(out, vec![0.0, 2.0, 4.0, 6.0, 8.0]);
    }

    #[test]
    fn fill_gaps_interior() {
        let mut samples = vec![1.0, f64::NAN, f64::NAN, 4.0];
        let fixed = fill_gaps(&mut samples);
        assert_eq!(fixed, 2);
        assert_eq!(samples, vec![1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn fill_gaps_edges_extend_nearest() {
        let mut samples = vec![f64::NAN, 2.0, f64::NAN];
        let fixed = fill_gaps(&mut samples);
        assert_eq!(fixed, 2);
        assert_eq!(samples, vec![2.0, 2.0, 2.0]);
    }

    #[test]
    fn fill_gaps_all_nan_is_noop() {
        let mut samples = vec![f64::NAN, f64::NAN];
        assert_eq!(fill_gaps(&mut samples), 0);
        assert!(samples.iter().all(|v| v.is_nan()));
    }
}
