//! Ideal "stick" spectra: discrete lines at exact positions.

use serde::{Deserialize, Serialize};

use crate::{ContinuousSpectrum, PeakShape, SpectrumError, UniformAxis};

/// An ideal line (stick) spectrum: a sorted list of `(position, intensity)`
/// pairs with no instrumental broadening.
///
/// This is the output of the paper's *Tool 1* for MS (ideal line spectra of
/// substance mixtures obtained by linear superposition) and the internal
/// representation of NMR pure-component hard models before peak rendering.
///
/// Invariants: sticks are sorted by position, positions are finite and
/// unique (merging sums intensities of coincident lines), intensities are
/// finite and non-negative.
///
/// # Example
///
/// ```
/// use spectrum::LineSpectrum;
///
/// # fn main() -> Result<(), spectrum::SpectrumError> {
/// let nitrogen = LineSpectrum::from_sticks(vec![(28.0, 100.0), (14.0, 7.2)])?;
/// let argon = LineSpectrum::from_sticks(vec![(40.0, 100.0), (20.0, 14.6)])?;
/// // Linear superposition at 80 % N2 / 20 % Ar:
/// let mix = LineSpectrum::superpose(&[(&nitrogen, 0.8), (&argon, 0.2)])?;
/// assert_eq!(mix.len(), 4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct LineSpectrum {
    sticks: Vec<(f64, f64)>,
}

impl LineSpectrum {
    /// An empty line spectrum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a line spectrum from `(position, intensity)` pairs.
    ///
    /// The sticks are sorted by position; coincident positions (within
    /// `1e-9`) are merged by summing their intensities.
    ///
    /// # Errors
    ///
    /// Returns [`SpectrumError::InvalidValue`] if any position or intensity
    /// is non-finite, or an intensity is negative.
    pub fn from_sticks(sticks: Vec<(f64, f64)>) -> Result<Self, SpectrumError> {
        for &(pos, int) in &sticks {
            if !pos.is_finite() {
                return Err(SpectrumError::InvalidValue(format!(
                    "stick position {pos} is not finite"
                )));
            }
            if !int.is_finite() || int < 0.0 {
                return Err(SpectrumError::InvalidValue(format!(
                    "stick intensity {int} must be finite and non-negative"
                )));
            }
        }
        let mut sticks = sticks;
        sticks.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite positions"));
        let mut merged: Vec<(f64, f64)> = Vec::with_capacity(sticks.len());
        for (pos, int) in sticks {
            match merged.last_mut() {
                Some(last) if (last.0 - pos).abs() < 1e-9 => last.1 += int,
                _ => merged.push((pos, int)),
            }
        }
        Ok(Self { sticks: merged })
    }

    /// Number of sticks.
    pub fn len(&self) -> usize {
        self.sticks.len()
    }

    /// Returns `true` if the spectrum contains no sticks.
    pub fn is_empty(&self) -> bool {
        self.sticks.is_empty()
    }

    /// The sorted sticks as `(position, intensity)` pairs.
    pub fn sticks(&self) -> &[(f64, f64)] {
        &self.sticks
    }

    /// Iterator over `(position, intensity)` pairs in position order.
    pub fn iter(&self) -> std::slice::Iter<'_, (f64, f64)> {
        self.sticks.iter()
    }

    /// Sum of all stick intensities (the "total ion current" for MS).
    pub fn total_intensity(&self) -> f64 {
        self.sticks.iter().map(|&(_, i)| i).sum()
    }

    /// The stick with the highest intensity, if any.
    pub fn base_peak(&self) -> Option<(f64, f64)> {
        self.sticks
            .iter()
            .copied()
            .max_by(|a, b| a.1.total_cmp(&b.1))
    }

    /// Intensity at exactly `position` (within `1e-9`), or zero.
    pub fn intensity_at(&self, position: f64) -> f64 {
        match self
            .sticks
            .binary_search_by(|probe| probe.0.partial_cmp(&position).expect("finite"))
        {
            Ok(idx) => self.sticks[idx].1,
            Err(idx) => {
                // Check both neighbours for near-coincidence.
                for cand in [idx.wrapping_sub(1), idx] {
                    if let Some(&(pos, int)) = self.sticks.get(cand) {
                        if (pos - position).abs() < 1e-9 {
                            return int;
                        }
                    }
                }
                0.0
            }
        }
    }

    /// A copy with every intensity multiplied by `factor`.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite (programming error:
    /// intensities must stay valid).
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative, got {factor}"
        );
        Self {
            sticks: self.sticks.iter().map(|&(p, i)| (p, i * factor)).collect(),
        }
    }

    /// A copy normalized so the base peak has intensity `1.0`.
    /// Returns an unchanged copy if the spectrum is empty or all-zero.
    pub fn normalized_to_base_peak(&self) -> Self {
        match self.base_peak() {
            Some((_, max)) if max > 0.0 => self.scaled(1.0 / max),
            _ => self.clone(),
        }
    }

    /// A copy normalized so intensities sum to `1.0`.
    /// Returns an unchanged copy if the total intensity is zero.
    pub fn normalized_to_total(&self) -> Self {
        let total = self.total_intensity();
        if total > 0.0 {
            self.scaled(1.0 / total)
        } else {
            self.clone()
        }
    }

    /// Linear superposition of weighted component spectra — the heart of
    /// the paper's Tool 1: "ideal spectra of the different substance
    /// mixtures with arbitrary concentrations are generated by linear
    /// superposition".
    ///
    /// # Errors
    ///
    /// Returns [`SpectrumError::InvalidValue`] if any weight is negative or
    /// non-finite, or [`SpectrumError::Empty`] if `parts` is empty.
    pub fn superpose(parts: &[(&LineSpectrum, f64)]) -> Result<Self, SpectrumError> {
        if parts.is_empty() {
            return Err(SpectrumError::Empty);
        }
        let mut sticks = Vec::new();
        for &(spec, weight) in parts {
            if !weight.is_finite() || weight < 0.0 {
                return Err(SpectrumError::InvalidValue(format!(
                    "superposition weight {weight} must be finite and non-negative"
                )));
            }
            sticks.extend(spec.sticks.iter().map(|&(p, i)| (p, i * weight)));
        }
        Self::from_sticks(sticks)
    }

    /// Renders the line spectrum onto `axis` by convolving every stick
    /// with `shape` (peak deformation "to a curve", per the paper's Tool 3).
    pub fn render(&self, axis: &UniformAxis, shape: &PeakShape) -> ContinuousSpectrum {
        let mut out = vec![0.0; axis.len()];
        let support = shape.support_radius();
        for &(pos, int) in &self.sticks {
            if int == 0.0 {
                continue;
            }
            let lo = axis.position_of(pos - support).floor().max(0.0) as usize;
            let hi = (axis.position_of(pos + support).ceil() as isize)
                .clamp(0, axis.len() as isize - 1) as usize;
            if lo > hi {
                continue;
            }
            for (idx, slot) in out.iter_mut().enumerate().take(hi + 1).skip(lo) {
                let x = axis.value_at(idx);
                *slot += int * shape.evaluate(x - pos);
            }
        }
        ContinuousSpectrum::from_parts(*axis, out).expect("finite render output")
    }

    /// Keeps only sticks whose position lies within `[lo, hi]`.
    pub fn clipped(&self, lo: f64, hi: f64) -> Self {
        Self {
            sticks: self
                .sticks
                .iter()
                .copied()
                .filter(|&(p, _)| p >= lo && p <= hi)
                .collect(),
        }
    }
}

impl FromIterator<(f64, f64)> for LineSpectrum {
    /// Collects sticks, panicking on invalid values.
    ///
    /// # Panics
    ///
    /// Panics if any stick is non-finite or negative; use
    /// [`LineSpectrum::from_sticks`] for fallible construction.
    fn from_iter<I: IntoIterator<Item = (f64, f64)>>(iter: I) -> Self {
        Self::from_sticks(iter.into_iter().collect()).expect("valid sticks")
    }
}

impl<'a> IntoIterator for &'a LineSpectrum {
    type Item = &'a (f64, f64);
    type IntoIter = std::slice::Iter<'a, (f64, f64)>;

    fn into_iter(self) -> Self::IntoIter {
        self.sticks.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n2() -> LineSpectrum {
        LineSpectrum::from_sticks(vec![(28.0, 100.0), (14.0, 7.2)]).unwrap()
    }

    #[test]
    fn sticks_are_sorted() {
        let spec = LineSpectrum::from_sticks(vec![(5.0, 1.0), (1.0, 2.0), (3.0, 0.5)]).unwrap();
        let positions: Vec<f64> = spec.iter().map(|&(p, _)| p).collect();
        assert_eq!(positions, vec![1.0, 3.0, 5.0]);
    }

    #[test]
    fn coincident_sticks_merge() {
        let spec =
            LineSpectrum::from_sticks(vec![(2.0, 1.0), (2.0, 3.0), (4.0, 1.0)]).unwrap();
        assert_eq!(spec.len(), 2);
        assert_eq!(spec.intensity_at(2.0), 4.0);
    }

    #[test]
    fn rejects_invalid_sticks() {
        assert!(LineSpectrum::from_sticks(vec![(f64::NAN, 1.0)]).is_err());
        assert!(LineSpectrum::from_sticks(vec![(1.0, f64::INFINITY)]).is_err());
        assert!(LineSpectrum::from_sticks(vec![(1.0, -0.1)]).is_err());
    }

    #[test]
    fn base_peak_and_total() {
        let spec = n2();
        assert_eq!(spec.base_peak(), Some((28.0, 100.0)));
        assert!((spec.total_intensity() - 107.2).abs() < 1e-12);
    }

    #[test]
    fn normalization_to_base_peak() {
        let spec = n2().normalized_to_base_peak();
        assert_eq!(spec.base_peak(), Some((28.0, 1.0)));
    }

    #[test]
    fn normalization_to_total_sums_to_one() {
        let spec = n2().normalized_to_total();
        assert!((spec.total_intensity() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn superposition_is_linear() {
        let a = LineSpectrum::from_sticks(vec![(10.0, 2.0)]).unwrap();
        let b = LineSpectrum::from_sticks(vec![(10.0, 4.0), (20.0, 1.0)]).unwrap();
        let mix = LineSpectrum::superpose(&[(&a, 0.5), (&b, 0.25)]).unwrap();
        assert!((mix.intensity_at(10.0) - 2.0).abs() < 1e-12);
        assert!((mix.intensity_at(20.0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn superposition_rejects_bad_weights() {
        let a = n2();
        assert!(LineSpectrum::superpose(&[(&a, -1.0)]).is_err());
        assert!(LineSpectrum::superpose(&[(&a, f64::NAN)]).is_err());
        assert!(LineSpectrum::superpose(&[]).is_err());
    }

    #[test]
    fn render_conserves_area_approximately() {
        let axis = UniformAxis::from_range(0.0, 60.0, 0.05).unwrap();
        let spec = n2();
        let shape = PeakShape::gaussian(0.5).unwrap();
        let cont = spec.render(&axis, &shape);
        // Unit-area peak shape: integral ~ total stick intensity.
        let area: f64 = cont.intensities().iter().sum::<f64>() * axis.step();
        assert!((area - spec.total_intensity()).abs() / spec.total_intensity() < 0.01);
    }

    #[test]
    fn render_peak_is_centered() {
        let axis = UniformAxis::from_range(0.0, 20.0, 0.1).unwrap();
        let spec = LineSpectrum::from_sticks(vec![(10.0, 1.0)]).unwrap();
        let cont = spec.render(&axis, &PeakShape::gaussian(1.0).unwrap());
        let (argmax, _) = cont
            .intensities()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        assert!((axis.value_at(argmax) - 10.0).abs() < 0.1 + 1e-12);
    }

    #[test]
    fn clipping_drops_out_of_range_sticks() {
        let spec = LineSpectrum::from_sticks(vec![(1.0, 1.0), (5.0, 1.0), (9.0, 1.0)]).unwrap();
        let clipped = spec.clipped(2.0, 8.0);
        assert_eq!(clipped.len(), 1);
        assert_eq!(clipped.sticks()[0].0, 5.0);
    }

    #[test]
    fn from_iterator_collects() {
        let spec: LineSpectrum = vec![(2.0, 1.0), (1.0, 1.0)].into_iter().collect();
        assert_eq!(spec.len(), 2);
        assert_eq!(spec.sticks()[0].0, 1.0);
    }

    #[test]
    fn intensity_at_missing_position_is_zero() {
        assert_eq!(n2().intensity_at(29.0), 0.0);
    }
}
