//! Polynomial baseline estimation and removal.
//!
//! Real spectra ride on slowly varying baselines (drift, probe background).
//! The characterization tools estimate them; the preprocessing for
//! chemometric baselines removes them.

use crate::linalg::{lstsq, Matrix};
use crate::{ContinuousSpectrum, SpectrumError};

/// Fits a polynomial of the given `degree` to the spectrum samples by
/// least squares and returns its coefficients (constant term first).
/// The abscissa is normalized to `[-1, 1]` for conditioning, so the
/// coefficients refer to that normalized variable; use
/// [`evaluate_polynomial`] with the same spectrum to apply them.
///
/// # Errors
///
/// Returns [`SpectrumError::InvalidValue`] if `degree + 1` exceeds the
/// number of samples, or [`SpectrumError::Singular`] if the fit is
/// degenerate.
pub fn fit_polynomial(
    spectrum: &ContinuousSpectrum,
    degree: usize,
) -> Result<Vec<f64>, SpectrumError> {
    let n = spectrum.len();
    if degree + 1 > n {
        return Err(SpectrumError::InvalidValue(format!(
            "degree {degree} needs more than {n} samples"
        )));
    }
    let mut design = Matrix::zeros(n, degree + 1);
    for i in 0..n {
        let t = normalized_abscissa(n, i);
        let mut p = 1.0;
        for d in 0..=degree {
            design.set(i, d, p);
            p *= t;
        }
    }
    lstsq(&design, spectrum.intensities(), 1e-12)
}

/// Evaluates polynomial `coefficients` (from [`fit_polynomial`]) over the
/// sample indices of a spectrum of length `len`.
pub fn evaluate_polynomial(coefficients: &[f64], len: usize) -> Vec<f64> {
    (0..len)
        .map(|i| {
            let t = normalized_abscissa(len, i);
            let mut p = 1.0;
            let mut acc = 0.0;
            for &c in coefficients {
                acc += c * p;
                p *= t;
            }
            acc
        })
        .collect()
}

/// Estimates a robust baseline by iteratively fitting a polynomial and
/// clipping samples that rise above the fit (so genuine peaks do not drag
/// the baseline upward), then returns the baseline-corrected spectrum and
/// the estimated baseline.
///
/// # Errors
///
/// Propagates errors from the underlying polynomial fits.
pub fn remove_baseline(
    spectrum: &ContinuousSpectrum,
    degree: usize,
    iterations: usize,
) -> Result<(ContinuousSpectrum, Vec<f64>), SpectrumError> {
    let mut work = spectrum.clone();
    let mut baseline = vec![0.0; spectrum.len()];
    for _ in 0..iterations.max(1) {
        let coef = fit_polynomial(&work, degree)?;
        baseline = evaluate_polynomial(&coef, spectrum.len());
        // Clip: samples above the running fit are replaced by the fit so the
        // next iteration tracks the underlying baseline, not the peaks.
        for (w, (&orig, &base)) in work
            .intensities_mut()
            .iter_mut()
            .zip(spectrum.intensities().iter().zip(baseline.iter()))
        {
            *w = orig.min(base);
        }
    }
    let corrected: Vec<f64> = spectrum
        .intensities()
        .iter()
        .zip(&baseline)
        .map(|(&y, &b)| y - b)
        .collect();
    let corrected = ContinuousSpectrum::from_parts(*spectrum.axis(), corrected)?;
    Ok((corrected, baseline))
}

fn normalized_abscissa(len: usize, index: usize) -> f64 {
    if len <= 1 {
        return 0.0;
    }
    2.0 * index as f64 / (len - 1) as f64 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniformAxis;

    fn spec(vals: Vec<f64>) -> ContinuousSpectrum {
        let axis = UniformAxis::new(0.0, 1.0, vals.len()).unwrap();
        ContinuousSpectrum::from_parts(axis, vals).unwrap()
    }

    #[test]
    fn fits_constant_baseline() {
        let s = spec(vec![2.0; 50]);
        let coef = fit_polynomial(&s, 0).unwrap();
        assert!((coef[0] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn fits_linear_trend() {
        let vals: Vec<f64> = (0..100).map(|i| 1.0 + 0.05 * i as f64).collect();
        let s = spec(vals);
        let coef = fit_polynomial(&s, 1).unwrap();
        let recon = evaluate_polynomial(&coef, 100);
        for (a, b) in recon.iter().zip(s.intensities()) {
            assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn degree_exceeding_samples_fails() {
        let s = spec(vec![1.0, 2.0]);
        assert!(fit_polynomial(&s, 2).is_err());
    }

    #[test]
    fn baseline_removal_flattens_tilted_peak() {
        // Peak on a linear ramp.
        let n = 200;
        let vals: Vec<f64> = (0..n)
            .map(|i| {
                let ramp = 0.5 + 0.01 * i as f64;
                let peak = if (90..110).contains(&i) { 10.0 } else { 0.0 };
                ramp + peak
            })
            .collect();
        let s = spec(vals);
        let (corrected, baseline) = remove_baseline(&s, 1, 5).unwrap();
        // Away from the peak the corrected signal should be near zero.
        for i in (0..60).chain(140..n) {
            assert!(
                corrected.intensities()[i].abs() < 0.5,
                "sample {i}: {}",
                corrected.intensities()[i]
            );
        }
        // The baseline should track the ramp, not the peak.
        assert!(baseline[100] < 5.0);
    }

    #[test]
    fn evaluate_polynomial_constant() {
        assert_eq!(evaluate_polynomial(&[3.0], 4), vec![3.0; 4]);
    }

    #[test]
    fn removal_preserves_peak_height_approximately() {
        let n = 200;
        let vals: Vec<f64> = (0..n)
            .map(|i| {
                let peak = (-((i as f64 - 100.0) / 5.0).powi(2)).exp() * 8.0;
                1.0 + peak
            })
            .collect();
        let s = spec(vals);
        let (corrected, _) = remove_baseline(&s, 2, 4).unwrap();
        let max = corrected.max_intensity();
        assert!((max - 8.0).abs() < 0.5, "max {max}");
    }
}
