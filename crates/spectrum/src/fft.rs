//! Radix-2 FFT and free-induction-decay (FID) helpers.
//!
//! "The NMR spectrum is produced by Fourier transformation" of the decaying
//! receiver signal (paper §II.B). The NMR simulator can generate spectra
//! either directly in the frequency domain or — for end-to-end realism — by
//! synthesizing a time-domain FID and transforming it here.

use crate::SpectrumError;

/// A complex number as a `(re, im)` pair (kept dependency-free).
pub type Complex = (f64, f64);

/// In-place iterative radix-2 Cooley–Tukey FFT.
///
/// # Errors
///
/// Returns [`SpectrumError::InvalidValue`] if the length is not a power of
/// two (or is zero).
pub fn fft_in_place(data: &mut [Complex]) -> Result<(), SpectrumError> {
    transform(data, false)
}

/// In-place inverse FFT (includes the `1/N` normalization).
///
/// # Errors
///
/// Returns [`SpectrumError::InvalidValue`] if the length is not a power of
/// two (or is zero).
pub fn ifft_in_place(data: &mut [Complex]) -> Result<(), SpectrumError> {
    transform(data, true)?;
    let n = data.len() as f64;
    for v in data.iter_mut() {
        v.0 /= n;
        v.1 /= n;
    }
    Ok(())
}

fn transform(data: &mut [Complex], inverse: bool) -> Result<(), SpectrumError> {
    let n = data.len();
    if n == 0 || n & (n - 1) != 0 {
        return Err(SpectrumError::InvalidValue(format!(
            "fft length {n} must be a non-zero power of two"
        )));
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = i.reverse_bits() >> (usize::BITS - bits);
        if j > i {
            data.swap(i, j);
        }
    }
    let sign = if inverse { 1.0 } else { -1.0 };
    let mut len = 2;
    while len <= n {
        let angle = sign * 2.0 * std::f64::consts::PI / len as f64;
        let (wr, wi) = (angle.cos(), angle.sin());
        for start in (0..n).step_by(len) {
            let (mut cr, mut ci) = (1.0, 0.0);
            for k in 0..len / 2 {
                let a = data[start + k];
                let b = data[start + k + len / 2];
                let t = (b.0 * cr - b.1 * ci, b.0 * ci + b.1 * cr);
                data[start + k] = (a.0 + t.0, a.1 + t.1);
                data[start + k + len / 2] = (a.0 - t.0, a.1 - t.1);
                let next = (cr * wr - ci * wi, cr * wi + ci * wr);
                cr = next.0;
                ci = next.1;
            }
        }
        len <<= 1;
    }
    Ok(())
}

/// One resonance of a synthetic FID: frequency (Hz), amplitude and
/// transverse relaxation time `t2` (s), which sets the Lorentzian line
/// width `1 / (pi * t2)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Resonance {
    /// Resonance frequency in Hz (relative to the carrier).
    pub frequency: f64,
    /// Signal amplitude.
    pub amplitude: f64,
    /// Transverse relaxation time T2 in seconds.
    pub t2: f64,
}

/// Synthesizes a complex FID of `n` points sampled at `dwell` seconds:
/// `sum_k A_k * exp(i 2π f_k t) * exp(-t / T2_k)`.
///
/// # Errors
///
/// Returns [`SpectrumError::InvalidValue`] if `n` is zero, `dwell` is not
/// positive, or any resonance has non-positive `t2`.
pub fn synthesize_fid(
    resonances: &[Resonance],
    n: usize,
    dwell: f64,
) -> Result<Vec<Complex>, SpectrumError> {
    if n == 0 {
        return Err(SpectrumError::InvalidValue("fid length is zero".into()));
    }
    if !(dwell.is_finite() && dwell > 0.0) {
        return Err(SpectrumError::InvalidValue(format!(
            "dwell time {dwell} must be positive"
        )));
    }
    for r in resonances {
        if !(r.t2.is_finite() && r.t2 > 0.0) {
            return Err(SpectrumError::InvalidValue(format!(
                "t2 {} must be positive",
                r.t2
            )));
        }
    }
    let mut fid = vec![(0.0, 0.0); n];
    for r in resonances {
        let w = 2.0 * std::f64::consts::PI * r.frequency;
        for (i, slot) in fid.iter_mut().enumerate() {
            let t = i as f64 * dwell;
            let decay = (-t / r.t2).exp() * r.amplitude;
            slot.0 += decay * (w * t).cos();
            slot.1 += decay * (w * t).sin();
        }
    }
    Ok(fid)
}

/// Transforms an FID into a real absorption-mode spectrum: FFT, then the
/// real part, with frequencies reordered so the output axis runs from
/// `-f_nyquist` to `+f_nyquist` left to right.
///
/// # Errors
///
/// Returns [`SpectrumError::InvalidValue`] if the FID length is not a
/// power of two.
pub fn fid_to_spectrum(fid: &[Complex]) -> Result<Vec<f64>, SpectrumError> {
    let mut data = fid.to_vec();
    // First-point scaling avoids a baseline offset from the FFT of a
    // one-sided decay (standard NMR processing).
    if let Some(first) = data.first_mut() {
        first.0 *= 0.5;
        first.1 *= 0.5;
    }
    fft_in_place(&mut data)?;
    let n = data.len();
    // fftshift so negative frequencies come first.
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let src = (i + n / 2) % n;
        out.push(data[src].0);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_power_of_two() {
        let mut data = vec![(0.0, 0.0); 12];
        assert!(fft_in_place(&mut data).is_err());
        let mut empty: Vec<Complex> = vec![];
        assert!(fft_in_place(&mut empty).is_err());
    }

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![(0.0, 0.0); 8];
        data[0] = (1.0, 0.0);
        fft_in_place(&mut data).unwrap();
        for (re, im) in data {
            assert!((re - 1.0).abs() < 1e-12);
            assert!(im.abs() < 1e-12);
        }
    }

    #[test]
    fn fft_ifft_roundtrip() {
        let original: Vec<Complex> = (0..64)
            .map(|i| ((i as f64 * 0.3).sin(), (i as f64 * 0.7).cos()))
            .collect();
        let mut data = original.clone();
        fft_in_place(&mut data).unwrap();
        ifft_in_place(&mut data).unwrap();
        for (a, b) in data.iter().zip(&original) {
            assert!((a.0 - b.0).abs() < 1e-10);
            assert!((a.1 - b.1).abs() < 1e-10);
        }
    }

    #[test]
    fn fft_of_complex_exponential_is_single_bin() {
        let n = 64;
        let k = 5;
        let mut data: Vec<Complex> = (0..n)
            .map(|i| {
                let phase = 2.0 * std::f64::consts::PI * k as f64 * i as f64 / n as f64;
                (phase.cos(), phase.sin())
            })
            .collect();
        fft_in_place(&mut data).unwrap();
        for (bin, &(re, im)) in data.iter().enumerate() {
            let mag = (re * re + im * im).sqrt();
            if bin == k {
                assert!((mag - n as f64).abs() < 1e-9, "bin {bin} mag {mag}");
            } else {
                assert!(mag < 1e-9, "bin {bin} mag {mag}");
            }
        }
    }

    #[test]
    fn parseval_energy_is_conserved() {
        let time: Vec<Complex> = (0..128)
            .map(|i| ((i as f64 * 0.11).sin(), (i as f64 * 0.05).cos()))
            .collect();
        let e_time: f64 = time.iter().map(|(r, i)| r * r + i * i).sum();
        let mut freq = time.clone();
        fft_in_place(&mut freq).unwrap();
        let e_freq: f64 = freq.iter().map(|(r, i)| r * r + i * i).sum::<f64>() / 128.0;
        assert!((e_time - e_freq).abs() / e_time < 1e-12);
    }

    #[test]
    fn fid_peak_lands_at_resonance_frequency() {
        let n = 1024;
        let dwell = 1e-3; // 1 kHz bandwidth, bins of ~0.977 Hz
        let res = Resonance {
            frequency: 100.0,
            amplitude: 1.0,
            t2: 0.5,
        };
        let fid = synthesize_fid(&[res], n, dwell).unwrap();
        let spec = fid_to_spectrum(&fid).unwrap();
        let (argmax, _) = spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap();
        // Frequency of bin i after fftshift: (i - n/2) / (n * dwell).
        let freq = (argmax as f64 - n as f64 / 2.0) / (n as f64 * dwell);
        assert!((freq - 100.0).abs() < 2.0, "freq {freq}");
    }

    #[test]
    fn narrower_t2_gives_wider_line() {
        let n = 2048;
        let dwell = 1e-3;
        let width_of = |t2: f64| {
            let fid = synthesize_fid(
                &[Resonance {
                    frequency: 0.0,
                    amplitude: 1.0,
                    t2,
                }],
                n,
                dwell,
            )
            .unwrap();
            let spec = fid_to_spectrum(&fid).unwrap();
            let max = spec.iter().cloned().fold(f64::MIN, f64::max);
            spec.iter().filter(|&&v| v > max / 2.0).count()
        };
        assert!(width_of(0.05) > width_of(0.5));
    }

    #[test]
    fn synthesize_fid_validates_inputs() {
        let r = Resonance {
            frequency: 1.0,
            amplitude: 1.0,
            t2: 1.0,
        };
        assert!(synthesize_fid(&[r], 0, 1e-3).is_err());
        assert!(synthesize_fid(&[r], 8, 0.0).is_err());
        let bad = Resonance { t2: 0.0, ..r };
        assert!(synthesize_fid(&[bad], 8, 1e-3).is_err());
    }
}
