//! Peak profiles used to render line spectra into continuous spectra.

use serde::{Deserialize, Serialize};

use crate::SpectrumError;

/// Natural log of 2, used by Gaussian FWHM parameterization.
const LN2: f64 = std::f64::consts::LN_2;

/// A normalized (unit-area) peak profile parameterized by its full width at
/// half maximum (FWHM).
///
/// * [`PeakShape::gaussian`] — instrumental broadening in the MS simulator
///   ("deformation of the peaks to a curve", paper §III.A.1);
/// * [`PeakShape::lorentzian`] — natural NMR line shape;
/// * [`PeakShape::lorentz_gauss`] — the Lorentz–Gauss (pseudo-Voigt) mix the
///   paper's Indirect Hard Modelling uses for NMR pure components
///   (§III.B.1: "a series of Lorentz-Gauss functions").
///
/// All profiles integrate to 1 over the real line, so a stick of intensity
/// `I` rendered with any shape conserves area `I`.
///
/// # Example
///
/// ```
/// use spectrum::PeakShape;
///
/// # fn main() -> Result<(), spectrum::SpectrumError> {
/// let shape = PeakShape::lorentz_gauss(0.02, 0.5)?;
/// let center = shape.evaluate(0.0);
/// let half = shape.evaluate(0.01); // at half width from center
/// assert!((half / center - 0.5).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum PeakShape {
    /// Gaussian profile with the given FWHM.
    Gaussian {
        /// Full width at half maximum.
        fwhm: f64,
    },
    /// Lorentzian (Cauchy) profile with the given FWHM.
    Lorentzian {
        /// Full width at half maximum.
        fwhm: f64,
    },
    /// Linear mix `eta * Lorentzian + (1 - eta) * Gaussian` of equal FWHM
    /// (the pseudo-Voigt approximation of a Voigt profile).
    LorentzGauss {
        /// Full width at half maximum shared by both parts.
        fwhm: f64,
        /// Lorentzian fraction in `[0, 1]`.
        eta: f64,
    },
}

impl PeakShape {
    /// A Gaussian with the given FWHM.
    ///
    /// # Errors
    ///
    /// Returns [`SpectrumError::InvalidPeak`] if `fwhm` is not strictly
    /// positive and finite.
    pub fn gaussian(fwhm: f64) -> Result<Self, SpectrumError> {
        check_fwhm(fwhm)?;
        Ok(Self::Gaussian { fwhm })
    }

    /// A Lorentzian with the given FWHM.
    ///
    /// # Errors
    ///
    /// Returns [`SpectrumError::InvalidPeak`] if `fwhm` is not strictly
    /// positive and finite.
    pub fn lorentzian(fwhm: f64) -> Result<Self, SpectrumError> {
        check_fwhm(fwhm)?;
        Ok(Self::Lorentzian { fwhm })
    }

    /// A Lorentz–Gauss mix with Lorentzian fraction `eta`.
    ///
    /// # Errors
    ///
    /// Returns [`SpectrumError::InvalidPeak`] if `fwhm` is not strictly
    /// positive and finite, or `eta` lies outside `[0, 1]`.
    pub fn lorentz_gauss(fwhm: f64, eta: f64) -> Result<Self, SpectrumError> {
        check_fwhm(fwhm)?;
        if !(0.0..=1.0).contains(&eta) || !eta.is_finite() {
            return Err(SpectrumError::InvalidPeak(format!(
                "lorentzian fraction eta must lie in [0, 1], got {eta}"
            )));
        }
        Ok(Self::LorentzGauss { fwhm, eta })
    }

    /// Full width at half maximum of the profile.
    pub fn fwhm(&self) -> f64 {
        match *self {
            Self::Gaussian { fwhm }
            | Self::Lorentzian { fwhm }
            | Self::LorentzGauss { fwhm, .. } => fwhm,
        }
    }

    /// The same shape with a different FWHM (used for broadening sweeps).
    ///
    /// # Errors
    ///
    /// Returns [`SpectrumError::InvalidPeak`] if `fwhm` is invalid.
    pub fn with_fwhm(&self, fwhm: f64) -> Result<Self, SpectrumError> {
        check_fwhm(fwhm)?;
        Ok(match *self {
            Self::Gaussian { .. } => Self::Gaussian { fwhm },
            Self::Lorentzian { .. } => Self::Lorentzian { fwhm },
            Self::LorentzGauss { eta, .. } => Self::LorentzGauss { fwhm, eta },
        })
    }

    /// Evaluates the unit-area profile at signed distance `dx` from the
    /// peak center.
    pub fn evaluate(&self, dx: f64) -> f64 {
        match *self {
            Self::Gaussian { fwhm } => gaussian_pdf(dx, fwhm),
            Self::Lorentzian { fwhm } => lorentzian_pdf(dx, fwhm),
            Self::LorentzGauss { fwhm, eta } => {
                eta * lorentzian_pdf(dx, fwhm) + (1.0 - eta) * gaussian_pdf(dx, fwhm)
            }
        }
    }

    /// Peak height at the center (`evaluate(0.0)`).
    pub fn height(&self) -> f64 {
        self.evaluate(0.0)
    }

    /// Distance from the center beyond which the profile is numerically
    /// negligible; renderers restrict their loops to `±support_radius()`.
    ///
    /// Gaussians decay fast (±5 FWHM covers ~1e-30 of the mass); the
    /// Lorentzian tail is heavy, so its radius is wider (±60 FWHM keeps the
    /// truncated tail below ~1 % of the area).
    pub fn support_radius(&self) -> f64 {
        match *self {
            Self::Gaussian { fwhm } => 5.0 * fwhm,
            Self::Lorentzian { fwhm } => 60.0 * fwhm,
            Self::LorentzGauss { fwhm, eta } => {
                if eta == 0.0 {
                    5.0 * fwhm
                } else {
                    60.0 * fwhm
                }
            }
        }
    }
}

fn check_fwhm(fwhm: f64) -> Result<(), SpectrumError> {
    if !(fwhm.is_finite() && fwhm > 0.0) {
        return Err(SpectrumError::InvalidPeak(format!(
            "fwhm must be positive and finite, got {fwhm}"
        )));
    }
    Ok(())
}

/// Unit-area Gaussian parameterized by FWHM.
fn gaussian_pdf(dx: f64, fwhm: f64) -> f64 {
    let sigma = fwhm / (2.0 * (2.0 * LN2).sqrt());
    let z = dx / sigma;
    (-0.5 * z * z).exp() / (sigma * (2.0 * std::f64::consts::PI).sqrt())
}

/// Unit-area Lorentzian parameterized by FWHM.
fn lorentzian_pdf(dx: f64, fwhm: f64) -> f64 {
    let gamma = fwhm / 2.0;
    gamma / (std::f64::consts::PI * (dx * dx + gamma * gamma))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn numeric_area(shape: &PeakShape, half_range: f64, n: usize) -> f64 {
        let dx = 2.0 * half_range / n as f64;
        (0..n)
            .map(|i| {
                let x = -half_range + (i as f64 + 0.5) * dx;
                shape.evaluate(x) * dx
            })
            .sum()
    }

    #[test]
    fn gaussian_has_unit_area() {
        let shape = PeakShape::gaussian(1.0).unwrap();
        assert!((numeric_area(&shape, 10.0, 20_000) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn lorentzian_has_unit_area() {
        let shape = PeakShape::lorentzian(1.0).unwrap();
        // Heavy tails: integrate far out, allow 1 % truncation.
        assert!((numeric_area(&shape, 500.0, 400_000) - 1.0).abs() < 2e-3);
    }

    #[test]
    fn mix_is_convex_combination() {
        let g = PeakShape::gaussian(0.3).unwrap();
        let l = PeakShape::lorentzian(0.3).unwrap();
        let m = PeakShape::lorentz_gauss(0.3, 0.25).unwrap();
        for dx in [0.0, 0.1, 0.5, 2.0] {
            let expect = 0.25 * l.evaluate(dx) + 0.75 * g.evaluate(dx);
            assert!((m.evaluate(dx) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn half_maximum_at_half_width() {
        for shape in [
            PeakShape::gaussian(0.8).unwrap(),
            PeakShape::lorentzian(0.8).unwrap(),
            PeakShape::lorentz_gauss(0.8, 0.5).unwrap(),
        ] {
            let ratio = shape.evaluate(0.4) / shape.evaluate(0.0);
            assert!(
                (ratio - 0.5).abs() < 1e-9,
                "{shape:?} half-height ratio {ratio}"
            );
        }
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert!(PeakShape::gaussian(0.0).is_err());
        assert!(PeakShape::gaussian(-1.0).is_err());
        assert!(PeakShape::gaussian(f64::NAN).is_err());
        assert!(PeakShape::lorentz_gauss(1.0, -0.1).is_err());
        assert!(PeakShape::lorentz_gauss(1.0, 1.1).is_err());
        assert!(PeakShape::lorentz_gauss(1.0, f64::NAN).is_err());
    }

    #[test]
    fn with_fwhm_preserves_family() {
        let shape = PeakShape::lorentz_gauss(0.1, 0.7).unwrap();
        let wider = shape.with_fwhm(0.2).unwrap();
        assert_eq!(wider, PeakShape::LorentzGauss { fwhm: 0.2, eta: 0.7 });
    }

    #[test]
    fn profile_is_symmetric_and_decreasing() {
        let shape = PeakShape::lorentz_gauss(1.0, 0.4).unwrap();
        let mut prev = shape.evaluate(0.0);
        for i in 1..50 {
            let dx = i as f64 * 0.1;
            let v = shape.evaluate(dx);
            assert!((v - shape.evaluate(-dx)).abs() < 1e-12);
            assert!(v <= prev);
            prev = v;
        }
    }

    #[test]
    fn support_radius_bounds_tail_mass() {
        let g = PeakShape::gaussian(1.0).unwrap();
        assert!(g.evaluate(g.support_radius()) < 1e-12);
        let l = PeakShape::lorentzian(1.0).unwrap();
        // Tail mass beyond r is ~ fwhm/(pi*r) for a Lorentzian.
        assert!(1.0 / (std::f64::consts::PI * l.support_radius()) < 0.01);
    }
}
