//! Peak detection and smoothing for measured spectra.
//!
//! The characterization tooling works from *expected* peak positions;
//! this module provides the inverse capability — finding peaks in an
//! unknown spectrum — plus Savitzky–Golay smoothing, the standard
//! pre-processing step for noisy instrument data.

use crate::{ContinuousSpectrum, SpectrumError};

/// A detected peak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectedPeak {
    /// Sample index of the maximum.
    pub index: usize,
    /// Axis coordinate of the maximum.
    pub position: f64,
    /// Peak height above the detection baseline.
    pub height: f64,
    /// Full width at half maximum, in axis units (interpolated).
    pub fwhm: f64,
}

/// Finds local maxima exceeding `min_height` that are separated by at
/// least `min_separation` axis units, in descending height order.
///
/// # Errors
///
/// Returns [`SpectrumError::InvalidValue`] if `min_height` is negative or
/// `min_separation` is not finite.
pub fn find_peaks(
    spectrum: &ContinuousSpectrum,
    min_height: f64,
    min_separation: f64,
) -> Result<Vec<DetectedPeak>, SpectrumError> {
    if min_height < 0.0 || !min_height.is_finite() {
        return Err(SpectrumError::InvalidValue(format!(
            "min_height {min_height} must be non-negative"
        )));
    }
    if !min_separation.is_finite() || min_separation < 0.0 {
        return Err(SpectrumError::InvalidValue(format!(
            "min_separation {min_separation} must be non-negative"
        )));
    }
    let ys = spectrum.intensities();
    let axis = spectrum.axis();
    let n = ys.len();
    let mut candidates: Vec<usize> = Vec::new();
    for i in 1..n.saturating_sub(1) {
        if ys[i] >= min_height && ys[i] > ys[i - 1] && ys[i] >= ys[i + 1] {
            candidates.push(i);
        }
    }
    // Highest first; suppress neighbours within min_separation.
    candidates.sort_by(|&a, &b| ys[b].total_cmp(&ys[a]));
    let mut kept: Vec<usize> = Vec::new();
    for &c in &candidates {
        if kept
            .iter()
            .all(|&k| (axis.value_at(k) - axis.value_at(c)).abs() >= min_separation)
        {
            kept.push(c);
        }
    }
    let peaks = kept
        .into_iter()
        .map(|i| {
            let height = ys[i];
            let half = height / 2.0;
            // Walk outward to the half-height crossings, interpolating.
            let mut left = axis.value_at(i);
            for j in (0..i).rev() {
                if ys[j] <= half {
                    let frac = (ys[j + 1] - half) / (ys[j + 1] - ys[j]).max(1e-300);
                    left = axis.value_at(j + 1) - frac * axis.step();
                    break;
                }
                left = axis.value_at(j);
            }
            let mut right = axis.value_at(i);
            for j in (i + 1)..n {
                if ys[j] <= half {
                    let frac = (ys[j - 1] - half) / (ys[j - 1] - ys[j]).max(1e-300);
                    right = axis.value_at(j - 1) + frac * axis.step();
                    break;
                }
                right = axis.value_at(j);
            }
            DetectedPeak {
                index: i,
                position: axis.value_at(i),
                height,
                fwhm: (right - left).max(axis.step()),
            }
        })
        .collect();
    Ok(peaks)
}

/// Savitzky–Golay smoothing: least-squares polynomial fits over a moving
/// window, evaluated at the window center. Equivalent to convolution with
/// precomputed coefficients; edges use shrunken windows.
///
/// # Errors
///
/// Returns [`SpectrumError::InvalidValue`] if `window` is even or zero,
/// or `degree >= window`.
pub fn savitzky_golay(
    spectrum: &ContinuousSpectrum,
    window: usize,
    degree: usize,
) -> Result<ContinuousSpectrum, SpectrumError> {
    if window == 0 || window.is_multiple_of(2) {
        return Err(SpectrumError::InvalidValue(format!(
            "window {window} must be odd and non-zero"
        )));
    }
    if degree >= window {
        return Err(SpectrumError::InvalidValue(format!(
            "degree {degree} must be below window {window}"
        )));
    }
    let ys = spectrum.intensities();
    let n = ys.len();
    let half = window / 2;
    let mut out = vec![0.0f64; n];
    for (i, slot) in out.iter_mut().enumerate() {
        let lo = i.saturating_sub(half);
        let hi = (i + half + 1).min(n);
        let m = hi - lo;
        let deg = degree.min(m - 1);
        // Fit a polynomial over the window (centered abscissa for
        // conditioning) and evaluate at sample i.
        let center = i as f64;
        let mut design = crate::linalg::Matrix::zeros(m, deg + 1);
        for (r, j) in (lo..hi).enumerate() {
            let t = j as f64 - center;
            let mut p = 1.0;
            for d in 0..=deg {
                design.set(r, d, p);
                p *= t;
            }
        }
        let coef = crate::linalg::lstsq(&design, &ys[lo..hi], 1e-12)?;
        *slot = coef[0]; // polynomial value at t = 0
    }
    ContinuousSpectrum::from_parts(*spectrum.axis(), out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{LineSpectrum, PeakShape, UniformAxis};

    fn gaussian_pair() -> ContinuousSpectrum {
        let axis = UniformAxis::from_range(0.0, 50.0, 0.1).unwrap();
        let line =
            LineSpectrum::from_sticks(vec![(15.0, 2.0), (35.0, 1.0)]).unwrap();
        line.render(&axis, &PeakShape::gaussian(1.0).unwrap())
    }

    #[test]
    fn finds_both_peaks_in_order_of_height() {
        let spec = gaussian_pair();
        let peaks = find_peaks(&spec, 0.05, 2.0).unwrap();
        assert_eq!(peaks.len(), 2);
        assert!((peaks[0].position - 15.0).abs() < 0.15);
        assert!((peaks[1].position - 35.0).abs() < 0.15);
        assert!(peaks[0].height > peaks[1].height);
    }

    #[test]
    fn fwhm_estimate_matches_shape() {
        let spec = gaussian_pair();
        let peaks = find_peaks(&spec, 0.05, 2.0).unwrap();
        for p in &peaks {
            assert!((p.fwhm - 1.0).abs() < 0.15, "fwhm {}", p.fwhm);
        }
    }

    #[test]
    fn min_separation_suppresses_shoulders() {
        // Two close peaks: only the taller survives a wide separation.
        let axis = UniformAxis::from_range(0.0, 20.0, 0.05).unwrap();
        let line = LineSpectrum::from_sticks(vec![(9.0, 2.0), (10.5, 1.5)]).unwrap();
        let spec = line.render(&axis, &PeakShape::gaussian(0.8).unwrap());
        let wide = find_peaks(&spec, 0.05, 3.0).unwrap();
        assert_eq!(wide.len(), 1);
        let narrow = find_peaks(&spec, 0.05, 0.5).unwrap();
        assert!(narrow.len() >= 2);
    }

    #[test]
    fn min_height_filters_noise_bumps() {
        let spec = gaussian_pair();
        // Peak heights: ~1.88 (stick 2.0, fwhm 1.0) and ~0.94 (stick 1.0).
        let tall_only = find_peaks(&spec, 1.2, 1.0).unwrap();
        assert_eq!(tall_only.len(), 1);
        assert!((tall_only[0].position - 15.0).abs() < 0.15);
    }

    #[test]
    fn detection_validates_inputs() {
        let spec = gaussian_pair();
        assert!(find_peaks(&spec, -1.0, 1.0).is_err());
        assert!(find_peaks(&spec, 0.1, f64::NAN).is_err());
    }

    #[test]
    fn savgol_preserves_polynomials() {
        // A quadratic is reproduced exactly by a degree-2 filter.
        let axis = UniformAxis::new(0.0, 1.0, 41).unwrap();
        let ys: Vec<f64> = (0..41).map(|i| 0.5 * (i as f64) * (i as f64) - 3.0).collect();
        let spec = ContinuousSpectrum::from_parts(axis, ys.clone()).unwrap();
        let smooth = savitzky_golay(&spec, 7, 2).unwrap();
        for (a, b) in smooth.intensities().iter().zip(&ys) {
            assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        }
    }

    #[test]
    fn savgol_reduces_noise_variance() {
        use rand::SeedableRng;
        let axis = UniformAxis::new(0.0, 1.0, 400).unwrap();
        let mut spec = ContinuousSpectrum::zeros(axis);
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(8);
        crate::noise::GaussianNoise { sigma: 1.0 }.apply(&mut spec, &mut rng);
        let smooth = savitzky_golay(&spec, 11, 2).unwrap();
        let var = |s: &ContinuousSpectrum| {
            s.intensities().iter().map(|v| v * v).sum::<f64>() / s.len() as f64
        };
        assert!(var(&smooth) < 0.5 * var(&spec));
    }

    #[test]
    fn savgol_validates_parameters() {
        let spec = gaussian_pair();
        assert!(savitzky_golay(&spec, 4, 2).is_err());
        assert!(savitzky_golay(&spec, 0, 0).is_err());
        assert!(savitzky_golay(&spec, 5, 5).is_err());
    }

    #[test]
    fn savgol_peak_height_mostly_preserved() {
        let spec = gaussian_pair();
        let smooth = savitzky_golay(&spec, 9, 3).unwrap();
        let orig_max = spec.max_intensity();
        let smooth_max = smooth.max_intensity();
        assert!((smooth_max - orig_max).abs() / orig_max < 0.02);
    }
}
