//! Small dense linear algebra: matrices, solvers, least squares.
//!
//! Sized for the workspace's needs — polynomial baselines, Levenberg–
//! Marquardt normal equations, PCA/PLS deflation — i.e. systems of at most
//! a few hundred unknowns. Everything is `f64` and row-major.

use serde::{Deserialize, Serialize};

use crate::SpectrumError;

/// A dense row-major matrix.
///
/// # Example
///
/// ```
/// use spectrum::linalg::Matrix;
///
/// let m = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
/// assert_eq!(m.get(1, 0), 3.0);
/// assert_eq!(m.transpose().get(0, 1), 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// The `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m.set(i, i, 1.0);
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths or there are no rows.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        assert!(!rows.is_empty(), "matrix needs at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "inconsistent row length");
            data.extend_from_slice(row);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Builds a matrix from a flat row-major vector.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "data length mismatch");
        Self { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col]
    }

    /// Sets the element at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the indices are out of range.
    pub fn set(&mut self, row: usize, col: usize, value: f64) {
        assert!(row < self.rows && col < self.cols, "index out of range");
        self.data[row * self.cols + col] = value;
    }

    /// A view of row `r`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is out of range.
    pub fn row(&self, r: usize) -> &[f64] {
        assert!(r < self.rows, "row out of range");
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The underlying row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// The transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.set(c, r, self.get(r, c));
            }
        }
        out
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self.get(i, k);
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out.data[i * other.cols + j] += aik * other.get(k, j);
                }
            }
        }
        out
    }

    /// Matrix–vector product `self * v`.
    ///
    /// # Panics
    ///
    /// Panics if `v.len() != self.cols()`.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(v.len(), self.cols, "matvec dimension mismatch");
        (0..self.rows)
            .map(|i| self.row(i).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }
}

/// Solves the square system `a * x = b` by Gaussian elimination with
/// partial pivoting.
///
/// # Errors
///
/// Returns [`SpectrumError::Singular`] if a pivot smaller than `1e-12`
/// (relative to the largest row entry) is encountered, and
/// [`SpectrumError::ShapeMismatch`] if `a` is not square or `b` has the
/// wrong length.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>, SpectrumError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(SpectrumError::ShapeMismatch {
            left: a.rows(),
            right: a.cols(),
        });
    }
    if b.len() != n {
        return Err(SpectrumError::ShapeMismatch {
            left: n,
            right: b.len(),
        });
    }
    // Augmented working copy.
    let mut m = a.clone();
    let mut rhs = b.to_vec();
    for col in 0..n {
        // Partial pivot.
        let (pivot_row, pivot_val) = (col..n)
            .map(|r| (r, m.get(r, col).abs()))
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap_or((col, 0.0));
        if pivot_val < 1e-12 {
            return Err(SpectrumError::Singular);
        }
        if pivot_row != col {
            for c in 0..n {
                let tmp = m.get(col, c);
                m.set(col, c, m.get(pivot_row, c));
                m.set(pivot_row, c, tmp);
            }
            rhs.swap(col, pivot_row);
        }
        let pivot = m.get(col, col);
        for r in (col + 1)..n {
            let factor = m.get(r, col) / pivot;
            if factor == 0.0 {
                continue;
            }
            for c in col..n {
                let v = m.get(r, c) - factor * m.get(col, c);
                m.set(r, c, v);
            }
            rhs[r] -= factor * rhs[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = rhs[row];
        for (c, &xc) in x.iter().enumerate().take(n).skip(row + 1) {
            acc -= m.get(row, c) * xc;
        }
        x[row] = acc / m.get(row, row);
    }
    Ok(x)
}

/// Solves the (possibly overdetermined) least-squares problem
/// `min ||a x - b||²` via the normal equations with Tikhonov damping
/// `lambda` (use `0.0` for plain least squares).
///
/// # Errors
///
/// Returns [`SpectrumError::Singular`] if the damped normal matrix is
/// singular, and [`SpectrumError::ShapeMismatch`] on dimension mismatch.
pub fn lstsq(a: &Matrix, b: &[f64], lambda: f64) -> Result<Vec<f64>, SpectrumError> {
    if b.len() != a.rows() {
        return Err(SpectrumError::ShapeMismatch {
            left: a.rows(),
            right: b.len(),
        });
    }
    let at = a.transpose();
    let mut ata = at.matmul(a);
    for i in 0..ata.rows() {
        let v = ata.get(i, i) + lambda;
        ata.set(i, i, v);
    }
    let atb = at.matvec(b);
    solve(&ata, &atb)
}

/// Solves the non-negative least squares problem `min ||a x - b||²`
/// subject to `x >= 0` with a simple active-set projection iteration.
/// Used when fitting concentrations, which are physically non-negative.
///
/// # Errors
///
/// Propagates [`SpectrumError`] from the inner unconstrained solves.
pub fn nnls(a: &Matrix, b: &[f64], iterations: usize) -> Result<Vec<f64>, SpectrumError> {
    let n = a.cols();
    let mut active: Vec<bool> = vec![true; n]; // true = free to vary
    let mut x = vec![0.0; n];
    for _ in 0..iterations.max(1) {
        // Build a reduced system over the free variables.
        let free: Vec<usize> = (0..n).filter(|&i| active[i]).collect();
        if free.is_empty() {
            return Ok(vec![0.0; n]);
        }
        let mut reduced = Matrix::zeros(a.rows(), free.len());
        for r in 0..a.rows() {
            for (j, &col) in free.iter().enumerate() {
                reduced.set(r, j, a.get(r, col));
            }
        }
        let sol = lstsq(&reduced, b, 1e-10)?;
        let mut any_negative = false;
        x = vec![0.0; n];
        for (j, &col) in free.iter().enumerate() {
            if sol[j] < 0.0 {
                active[col] = false;
                any_negative = true;
            } else {
                x[col] = sol[j];
            }
        }
        if !any_negative {
            break;
        }
    }
    Ok(x)
}

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if the slices differ in length.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm of a slice.
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solves_trivially() {
        let eye = Matrix::identity(3);
        let x = solve(&eye, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x + 3y = 10 -> x = 1, y = 3.
        let a = Matrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Leading zero forces a row swap.
        let a = Matrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_matrix_is_detected() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        assert_eq!(solve(&a, &[1.0, 2.0]), Err(SpectrumError::Singular));
    }

    #[test]
    fn non_square_solve_fails() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            solve(&a, &[0.0, 0.0]),
            Err(SpectrumError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn lstsq_recovers_line_fit() {
        // y = 2x + 1 sampled at x = 0..4 with design [1, x].
        let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![1.0, x]).collect();
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&row_refs);
        let b: Vec<f64> = xs.iter().map(|&x| 2.0 * x + 1.0).collect();
        let coef = lstsq(&a, &b, 0.0).unwrap();
        assert!((coef[0] - 1.0).abs() < 1e-10);
        assert!((coef[1] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn lstsq_overdetermined_noisy() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64 / 10.0).collect();
        let rows: Vec<Vec<f64>> = xs.iter().map(|&x| vec![1.0, x]).collect();
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = Matrix::from_rows(&row_refs);
        // Deterministic "noise" so the test is stable.
        let b: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 3.0 * x - 0.5 + 0.01 * ((i % 3) as f64 - 1.0))
            .collect();
        let coef = lstsq(&a, &b, 0.0).unwrap();
        assert!((coef[1] - 3.0).abs() < 0.01);
        assert!((coef[0] + 0.5).abs() < 0.02);
    }

    #[test]
    fn nnls_clamps_negative_solution() {
        // Unconstrained solution has a negative coefficient.
        let a = Matrix::from_rows(&[&[1.0, 1.0], &[1.0, 0.0], &[0.0, 1.0]]);
        let b = [1.0, 1.5, -0.5];
        let x = nnls(&a, &b, 10).unwrap();
        assert!(x.iter().all(|&v| v >= 0.0));
        // Second coefficient should be pinned at zero.
        assert_eq!(x[1], 0.0);
        assert!(x[0] > 1.0);
    }

    #[test]
    fn nnls_matches_lstsq_when_positive() {
        let a = Matrix::from_rows(&[&[1.0, 0.0], &[0.0, 1.0], &[1.0, 1.0]]);
        let b = [2.0, 3.0, 5.0];
        let x = nnls(&a, &b, 10).unwrap();
        let y = lstsq(&a, &b, 1e-10).unwrap();
        assert!((x[0] - y[0]).abs() < 1e-6);
        assert!((x[1] - y[1]).abs() < 1e-6);
    }

    #[test]
    fn matmul_and_transpose() {
        let a = Matrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Matrix::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
        assert_eq!(a.transpose().row(0), &[1.0, 3.0]);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }
}
