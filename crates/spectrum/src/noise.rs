//! Instrument noise and drift models.
//!
//! The paper's Tool 2 extracts "the deformation of the peaks to a curve,
//! the frequency-dependent attenuation, the drift and the noise model"
//! from real measurements. This module provides composable noise sources
//! that both the hidden prototype and the estimated simulator use.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::ContinuousSpectrum;

/// Additive white Gaussian noise with standard deviation `sigma`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GaussianNoise {
    /// Standard deviation of the additive noise.
    pub sigma: f64,
}

impl GaussianNoise {
    /// Applies the noise to every sample in place.
    pub fn apply<R: Rng + ?Sized>(&self, spectrum: &mut ContinuousSpectrum, rng: &mut R) {
        if self.sigma <= 0.0 {
            return;
        }
        for v in spectrum.intensities_mut() {
            *v += self.sigma * standard_normal(rng);
        }
    }
}

/// Signal-dependent (shot) noise: each sample `y` receives noise with
/// standard deviation `scale * sqrt(max(y, 0))`, modelling ion-counting
/// statistics in the detector.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ShotNoise {
    /// Proportionality constant of the square-root noise law.
    pub scale: f64,
}

impl ShotNoise {
    /// Applies the noise to every sample in place.
    pub fn apply<R: Rng + ?Sized>(&self, spectrum: &mut ContinuousSpectrum, rng: &mut R) {
        if self.scale <= 0.0 {
            return;
        }
        for v in spectrum.intensities_mut() {
            let sd = self.scale * v.max(0.0).sqrt();
            if sd > 0.0 {
                *v += sd * standard_normal(rng);
            }
        }
    }
}

/// Slowly varying baseline drift: a random-walk baseline low-pass filtered
/// to wander on the scale of `correlation` samples, with overall amplitude
/// `amplitude`. Models thermal/vacuum drift in the prototype.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftNoise {
    /// Peak-scale amplitude of the drift.
    pub amplitude: f64,
    /// Correlation length in samples (larger = smoother drift).
    pub correlation: usize,
}

impl DriftNoise {
    /// Applies a smooth random baseline to the spectrum in place.
    pub fn apply<R: Rng + ?Sized>(&self, spectrum: &mut ContinuousSpectrum, rng: &mut R) {
        if self.amplitude <= 0.0 || spectrum.is_empty() {
            return;
        }
        let alpha = 1.0 / (self.correlation.max(1) as f64);
        let mut level = standard_normal(rng);
        for v in spectrum.intensities_mut() {
            level = (1.0 - alpha) * level + alpha.sqrt() * standard_normal(rng);
            *v += self.amplitude * level;
        }
    }
}

/// Occasional spike artifacts (cosmic events / discharge): with probability
/// `probability` per sample, adds an exponential-magnitude spike.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpikeNoise {
    /// Per-sample spike probability.
    pub probability: f64,
    /// Mean spike magnitude.
    pub magnitude: f64,
}

impl SpikeNoise {
    /// Applies spikes in place.
    pub fn apply<R: Rng + ?Sized>(&self, spectrum: &mut ContinuousSpectrum, rng: &mut R) {
        if self.probability <= 0.0 || self.magnitude <= 0.0 {
            return;
        }
        for v in spectrum.intensities_mut() {
            if rng.gen::<f64>() < self.probability {
                let mag: f64 = rng.gen::<f64>();
                *v += self.magnitude * (-mag.max(1e-12).ln());
            }
        }
    }
}

/// A complete instrument noise model combining all sources, applied in a
/// fixed order (shot → additive → drift → spikes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Additive white noise.
    pub gaussian: GaussianNoise,
    /// Signal-dependent shot noise.
    pub shot: ShotNoise,
    /// Slow baseline drift.
    pub drift: DriftNoise,
    /// Spike artifacts.
    pub spikes: SpikeNoise,
}

impl NoiseModel {
    /// A silent model (all sources disabled) — useful as a baseline.
    pub fn silent() -> Self {
        Self {
            gaussian: GaussianNoise { sigma: 0.0 },
            shot: ShotNoise { scale: 0.0 },
            drift: DriftNoise {
                amplitude: 0.0,
                correlation: 1,
            },
            spikes: SpikeNoise {
                probability: 0.0,
                magnitude: 0.0,
            },
        }
    }

    /// Applies every enabled noise source in place.
    pub fn apply<R: Rng + ?Sized>(&self, spectrum: &mut ContinuousSpectrum, rng: &mut R) {
        self.shot.apply(spectrum, rng);
        self.gaussian.apply(spectrum, rng);
        self.drift.apply(spectrum, rng);
        self.spikes.apply(spectrum, rng);
    }
}

impl Default for NoiseModel {
    fn default() -> Self {
        Self::silent()
    }
}

/// Samples a standard normal variate via the Box–Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen::<f64>().max(1e-300);
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::UniformAxis;
    use rand::SeedableRng;

    fn flat(n: usize, level: f64) -> ContinuousSpectrum {
        let axis = UniformAxis::new(0.0, 1.0, n).unwrap();
        ContinuousSpectrum::from_parts(axis, vec![level; n]).unwrap()
    }

    fn rng() -> impl Rng {
        rand::rngs::StdRng::seed_from_u64(42)
    }

    #[test]
    fn standard_normal_has_unit_variance() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "variance {var}");
    }

    #[test]
    fn gaussian_noise_matches_sigma() {
        let mut s = flat(10_000, 0.0);
        GaussianNoise { sigma: 0.5 }.apply(&mut s, &mut rng());
        let var = s.intensities().iter().map(|v| v * v).sum::<f64>() / s.len() as f64;
        assert!((var.sqrt() - 0.5).abs() < 0.02);
    }

    #[test]
    fn zero_sigma_is_noop() {
        let mut s = flat(100, 3.0);
        GaussianNoise { sigma: 0.0 }.apply(&mut s, &mut rng());
        assert!(s.intensities().iter().all(|&v| v == 3.0));
    }

    #[test]
    fn shot_noise_scales_with_signal() {
        let mut low = flat(20_000, 1.0);
        let mut high = flat(20_000, 100.0);
        ShotNoise { scale: 0.2 }.apply(&mut low, &mut rng());
        ShotNoise { scale: 0.2 }.apply(&mut high, &mut rng());
        let sd = |s: &ContinuousSpectrum, mean: f64| {
            (s.intensities()
                .iter()
                .map(|v| (v - mean) * (v - mean))
                .sum::<f64>()
                / s.len() as f64)
                .sqrt()
        };
        let ratio = sd(&high, 100.0) / sd(&low, 1.0);
        // sqrt(100)/sqrt(1) = 10.
        assert!((ratio - 10.0).abs() < 1.0, "ratio {ratio}");
    }

    #[test]
    fn shot_noise_ignores_negative_samples() {
        let axis = UniformAxis::new(0.0, 1.0, 3).unwrap();
        let mut s = ContinuousSpectrum::from_parts(axis, vec![-5.0, -5.0, -5.0]).unwrap();
        ShotNoise { scale: 1.0 }.apply(&mut s, &mut rng());
        assert!(s.intensities().iter().all(|&v| v == -5.0));
    }

    #[test]
    fn drift_is_smooth() {
        let mut s = flat(5_000, 0.0);
        DriftNoise {
            amplitude: 1.0,
            correlation: 200,
        }
        .apply(&mut s, &mut rng());
        // Adjacent-sample differences must be much smaller than the overall
        // excursion for a smooth drift.
        let diffs: f64 = s
            .intensities()
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .sum::<f64>()
            / (s.len() - 1) as f64;
        let excursion = s.max_intensity()
            - s.intensities().iter().copied().fold(f64::INFINITY, f64::min);
        assert!(excursion > 0.0);
        assert!(diffs < excursion / 10.0, "diffs {diffs} excursion {excursion}");
    }

    #[test]
    fn spikes_are_rare_and_positive() {
        let mut s = flat(50_000, 0.0);
        SpikeNoise {
            probability: 0.001,
            magnitude: 10.0,
        }
        .apply(&mut s, &mut rng());
        let hits = s.intensities().iter().filter(|&&v| v != 0.0).count();
        assert!(hits > 10 && hits < 200, "hits {hits}");
        assert!(s.intensities().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn silent_model_changes_nothing() {
        let mut s = flat(64, 2.5);
        NoiseModel::silent().apply(&mut s, &mut rng());
        assert!(s.intensities().iter().all(|&v| v == 2.5));
    }

    #[test]
    fn default_is_silent() {
        assert_eq!(NoiseModel::default(), NoiseModel::silent());
    }
}
