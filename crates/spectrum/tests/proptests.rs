//! Property-based tests for the spectrum substrate.

use proptest::prelude::*;
use spectrum::fft::{fft_in_place, ifft_in_place, Complex};
use spectrum::{interp, stats, LineSpectrum, PeakShape, UniformAxis};

fn finite_axis() -> impl Strategy<Value = UniformAxis> {
    (-100.0..100.0f64, 0.01..5.0f64, 2..512usize)
        .prop_map(|(start, step, len)| UniformAxis::new(start, step, len).expect("valid axis"))
}

fn sticks() -> impl Strategy<Value = Vec<(f64, f64)>> {
    prop::collection::vec((-50.0..150.0f64, 0.0..100.0f64), 0..40)
}

proptest! {
    #[test]
    fn axis_values_are_monotone(axis in finite_axis()) {
        let values = axis.values();
        for w in values.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
    }

    #[test]
    fn axis_nearest_index_inverts_value_at(axis in finite_axis(), idx in 0..512usize) {
        let idx = idx % axis.len();
        let x = axis.value_at(idx);
        prop_assert_eq!(axis.nearest_index(x), Some(idx));
    }

    #[test]
    fn line_spectrum_is_sorted_and_non_negative(raw in sticks()) {
        let spec = LineSpectrum::from_sticks(raw).expect("valid sticks");
        let mut prev = f64::NEG_INFINITY;
        for &(pos, int) in spec.sticks() {
            prop_assert!(pos > prev);
            prop_assert!(int >= 0.0);
            prev = pos;
        }
    }

    #[test]
    fn superposition_total_is_weighted_sum(raw_a in sticks(), raw_b in sticks(),
                                           wa in 0.0..5.0f64, wb in 0.0..5.0f64) {
        let a = LineSpectrum::from_sticks(raw_a).expect("valid");
        let b = LineSpectrum::from_sticks(raw_b).expect("valid");
        let mix = LineSpectrum::superpose(&[(&a, wa), (&b, wb)]).expect("valid");
        let expect = wa * a.total_intensity() + wb * b.total_intensity();
        prop_assert!((mix.total_intensity() - expect).abs() <= 1e-9 * (1.0 + expect));
    }

    #[test]
    fn scaling_is_homogeneous(raw in sticks(), k in 0.0..10.0f64) {
        let spec = LineSpectrum::from_sticks(raw).expect("valid");
        let scaled = spec.scaled(k);
        prop_assert!((scaled.total_intensity() - k * spec.total_intensity()).abs()
            <= 1e-9 * (1.0 + spec.total_intensity() * k));
    }

    #[test]
    fn normalized_to_total_sums_to_one(raw in sticks()) {
        let spec = LineSpectrum::from_sticks(raw).expect("valid");
        if spec.total_intensity() > 1e-9 {
            let norm = spec.normalized_to_total();
            prop_assert!((norm.total_intensity() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn peak_shapes_are_non_negative_and_symmetric(
        fwhm in 0.01..10.0f64, eta in 0.0..1.0f64, dx in -50.0..50.0f64
    ) {
        let shape = PeakShape::lorentz_gauss(fwhm, eta).expect("valid");
        let v = shape.evaluate(dx);
        prop_assert!(v >= 0.0);
        prop_assert!((v - shape.evaluate(-dx)).abs() < 1e-12 * (1.0 + v));
    }

    #[test]
    fn render_is_non_negative(raw in sticks(), fwhm in 0.05..2.0f64) {
        let spec = LineSpectrum::from_sticks(raw).expect("valid");
        let axis = UniformAxis::new(-60.0, 0.5, 440).expect("valid axis");
        let shape = PeakShape::gaussian(fwhm).expect("valid shape");
        let cont = spec.render(&axis, &shape);
        prop_assert!(cont.intensities().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn resample_to_same_axis_is_identity(samples in prop::collection::vec(-10.0..10.0f64, 2..128)) {
        let axis = UniformAxis::new(0.0, 1.0, samples.len()).expect("valid");
        let out = interp::resample(&axis, &samples, &axis);
        for (a, b) in out.iter().zip(&samples) {
            prop_assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn interpolation_is_bounded_by_neighbours(
        samples in prop::collection::vec(-10.0..10.0f64, 2..64),
        frac in 0.0..1.0f64
    ) {
        let axis = UniformAxis::new(0.0, 1.0, samples.len()).expect("valid");
        let i = samples.len() / 2 - 1;
        let x = axis.value_at(i) + frac;
        let y = interp::linear_at(&axis, &samples, x);
        let lo = samples[i].min(samples[i + 1]);
        let hi = samples[i].max(samples[i + 1]);
        prop_assert!(y >= lo - 1e-12 && y <= hi + 1e-12);
    }

    #[test]
    fn fft_roundtrip_preserves_signal(
        reals in prop::collection::vec(-5.0..5.0f64, 64),
        imags in prop::collection::vec(-5.0..5.0f64, 64)
    ) {
        let original: Vec<Complex> = reals.into_iter().zip(imags).collect();
        let mut data = original.clone();
        fft_in_place(&mut data).expect("power of two");
        ifft_in_place(&mut data).expect("power of two");
        for (a, b) in data.iter().zip(&original) {
            prop_assert!((a.0 - b.0).abs() < 1e-9);
            prop_assert!((a.1 - b.1).abs() < 1e-9);
        }
    }

    #[test]
    fn mae_is_zero_iff_equal(values in prop::collection::vec(-10.0..10.0f64, 1..64)) {
        prop_assert_eq!(stats::mae(&values, &values).expect("same length"), 0.0);
    }

    #[test]
    fn mae_is_symmetric(a in prop::collection::vec(-10.0..10.0f64, 1..32),
                        b in prop::collection::vec(-10.0..10.0f64, 1..32)) {
        if a.len() == b.len() {
            let ab = stats::mae(&a, &b).expect("same length");
            let ba = stats::mae(&b, &a).expect("same length");
            prop_assert!((ab - ba).abs() < 1e-12);
        }
    }

    #[test]
    fn rmse_dominates_mae(a in prop::collection::vec(-10.0..10.0f64, 2..32)) {
        let zeros = vec![0.0; a.len()];
        let mae = stats::mae(&a, &zeros).expect("ok");
        let rmse = stats::rmse(&a, &zeros).expect("ok");
        prop_assert!(rmse + 1e-12 >= mae);
    }
}
