//! Property-based tests for the MS toolchain.

use chem::fragmentation::GasLibrary;
use chem::Mixture;
use ms_sim::campaign::MS_TASK_SUBSTANCES;
use ms_sim::ideal::IdealSpectrumGenerator;
use ms_sim::instrument::{default_axis, nominal_instrument};
use ms_sim::prototype::MmsPrototype;
use ms_sim::simulate::TrainingSimulator;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn arbitrary_task_mixture() -> impl Strategy<Value = Mixture> {
    prop::collection::vec(0.01..1.0f64, MS_TASK_SUBSTANCES.len()).prop_map(|weights| {
        Mixture::from_weights(
            MS_TASK_SUBSTANCES
                .iter()
                .zip(weights)
                .map(|(&n, w)| (n.to_string(), w))
                .collect(),
        )
        .expect("positive weights")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn ideal_spectra_scale_linearly_with_any_mixture(mix in arbitrary_task_mixture()) {
        let generator = IdealSpectrumGenerator::new(GasLibrary::standard());
        let one = generator.generate(&mix).expect("ideal");
        // Manual superposition must agree stick-by-stick.
        for (name, fraction) in &mix {
            let pure = generator.generate_pure(name).expect("pure");
            for &(mz, intensity) in pure.sticks() {
                prop_assert!(one.intensity_at(mz) >= fraction * intensity - 1e-9);
            }
        }
    }

    #[test]
    fn simulated_measurements_are_non_negative_and_axis_sized(
        mix in arbitrary_task_mixture(), seed in 0u64..500
    ) {
        let simulator = TrainingSimulator::new(
            nominal_instrument(),
            GasLibrary::standard(),
            MS_TASK_SUBSTANCES.iter().map(|&s| s.to_string()).collect(),
            default_axis(),
        )
        .expect("simulator");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let spec = simulator.simulate_measurement(&mix, &mut rng).expect("measurement");
        prop_assert_eq!(spec.len(), default_axis().len());
        prop_assert!(spec.intensities().iter().all(|&v| v >= 0.0 && v.is_finite()));
    }

    #[test]
    fn prototype_measurements_are_non_negative(mix in arbitrary_task_mixture(), seed in 0u64..200) {
        let mut mms = MmsPrototype::new(seed);
        let sample = mms.measure(&mix).expect("measure");
        prop_assert!(sample.spectrum.intensities().iter().all(|&v| v >= 0.0));
        prop_assert_eq!(sample.mixture.parts().len(), mix.parts().len());
    }

    #[test]
    fn dataset_labels_live_on_the_simplex(count in 1usize..12, seed in 0u64..200) {
        let simulator = TrainingSimulator::new(
            nominal_instrument(),
            GasLibrary::standard(),
            MS_TASK_SUBSTANCES.iter().map(|&s| s.to_string()).collect(),
            default_axis(),
        )
        .expect("simulator");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let data = simulator.generate_dataset(count, &mut rng).expect("dataset");
        prop_assert_eq!(data.len(), count);
        for label in &data.labels {
            let sum: f64 = label.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-9);
            prop_assert!(label.iter().all(|&v| (0.0..=1.0).contains(&v)));
        }
    }

    #[test]
    fn stronger_fraction_gives_stronger_base_peak(frac in 0.2..0.8f64) {
        // Monotonicity of the clean render in the mixture fraction.
        let simulator = TrainingSimulator::new(
            nominal_instrument(),
            GasLibrary::standard(),
            vec!["Ar".into(), "N2".into()],
            default_axis(),
        )
        .expect("simulator");
        let lo = Mixture::from_fractions(vec![("Ar".into(), frac * 0.5), ("N2".into(), 1.0 - frac * 0.5)]).expect("mixture");
        let hi = Mixture::from_fractions(vec![("Ar".into(), frac), ("N2".into(), 1.0 - frac)]).expect("mixture");
        let spec_lo = simulator.simulate_clean(&lo).expect("render");
        let spec_hi = simulator.simulate_clean(&hi).expect("render");
        prop_assert!(spec_hi.sample_at(40.0) > spec_lo.sample_at(40.0));
    }
}
