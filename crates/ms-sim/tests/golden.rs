//! Golden-file regression test for the MS measurement simulator.
//!
//! Pins the exact numeric output of Tool 3 — ideal line spectra and the
//! continuous spectra the nominal instrument renders/measures from them —
//! against a blessed fixture under `tests/golden/`. Every value is stored
//! as the hex of its `f64` bit pattern, so the comparison is bit-exact:
//! any change to the fragmentation library, superposition, peak-shape
//! rendering, noise model, or RNG stream shows up as a failure naming the
//! first diverging sample index.
//!
//! To re-bless after an intentional change:
//! `MS_GOLDEN_BLESS=1 cargo test -p ms-sim --test golden`

use std::fmt::Write as _;
use std::path::PathBuf;

use chem::fragmentation::GasLibrary;
use chem::Mixture;
use ms_sim::instrument::{default_axis, nominal_instrument};
use ms_sim::simulate::TrainingSimulator;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

const FIXTURE: &str = "instrument_v1.txt";

fn fixture_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests/golden")
        .join(FIXTURE)
}

fn simulator() -> TrainingSimulator {
    TrainingSimulator::new(
        nominal_instrument(),
        GasLibrary::standard(),
        vec!["N2".into(), "O2".into(), "Ar".into(), "CO2".into()],
        default_axis(),
    )
    .expect("build nominal simulator")
}

fn air_like() -> Mixture {
    Mixture::from_fractions(vec![
        ("N2".into(), 0.78),
        ("O2".into(), 0.21),
        ("Ar".into(), 0.01),
    ])
    .expect("air-like mixture")
}

fn quaternary() -> Mixture {
    Mixture::from_fractions(vec![
        ("N2".into(), 0.25),
        ("O2".into(), 0.25),
        ("Ar".into(), 0.25),
        ("CO2".into(), 0.25),
    ])
    .expect("quaternary mixture")
}

fn hex_line(values: impl IntoIterator<Item = f64>) -> String {
    let mut line = String::new();
    for (i, v) in values.into_iter().enumerate() {
        if i > 0 {
            line.push(' ');
        }
        write!(line, "{:016x}", v.to_bits()).expect("write hex word");
    }
    line
}

/// Renders the full fixture text: one `case <name>` header per scenario
/// followed by one line of space-separated f64 bit patterns.
fn render_fixture() -> String {
    let sim = simulator();
    let mut out = String::new();
    out.push_str("# ms-sim golden fixture: bit-exact Tool-3 outputs on the nominal instrument.\n");
    out.push_str("# Values are hex f64 bit patterns; line sticks are (m/z, intensity) pairs.\n");
    out.push_str("# Regenerate with: MS_GOLDEN_BLESS=1 cargo test -p ms-sim --test golden\n");

    let mut case = |name: &str, values: Vec<f64>| {
        writeln!(out, "case {name}").expect("write case header");
        out.push_str(&hex_line(values));
        out.push('\n');
    };

    // Ideal line spectra (superposition + ignition gas), flattened to
    // alternating (m/z, intensity) pairs.
    for (name, mixture) in [
        ("line/pure-n2", Mixture::pure("N2")),
        ("line/air-like", air_like()),
    ] {
        let line = sim.sample_line(&mixture).expect("sample line");
        case(
            name,
            line.sticks().iter().flat_map(|&(mz, i)| [mz, i]).collect(),
        );
    }

    // Noiseless continuous renders of those line spectra.
    for (name, mixture) in [
        ("clean/pure-n2", Mixture::pure("N2")),
        ("clean/air-like", air_like()),
        ("clean/equal-quaternary", quaternary()),
    ] {
        let spectrum = sim.simulate_clean(&mixture).expect("simulate clean");
        case(name, spectrum.into_intensities());
    }

    // Noisy measurements: the RNG seed is part of the contract, pinning
    // the whole ChaCha8 draw order through the noise model.
    for (name, mixture, seed) in [
        ("noisy/air-like/seed-11", air_like(), 11u64),
        ("noisy/equal-quaternary/seed-29", quaternary(), 29u64),
    ] {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let spectrum = sim
            .simulate_measurement(&mixture, &mut rng)
            .expect("simulate measurement");
        case(name, spectrum.into_intensities());
    }

    out
}

/// Splits fixture text into `(case name, hex words)` pairs.
fn parse_cases(text: &str) -> Vec<(String, Vec<String>)> {
    let mut cases = Vec::new();
    let mut lines = text.lines().filter(|l| !l.starts_with('#') && !l.is_empty());
    while let Some(header) = lines.next() {
        let name = header
            .strip_prefix("case ")
            .unwrap_or_else(|| panic!("malformed fixture header: {header:?}"));
        let data = lines.next().unwrap_or_else(|| {
            panic!("fixture truncated: case {name} has no data line")
        });
        cases.push((
            name.to_string(),
            data.split_whitespace().map(str::to_string).collect(),
        ));
    }
    cases
}

#[test]
fn simulator_output_matches_blessed_fixture_bit_for_bit() {
    let current = render_fixture();
    let path = fixture_path();

    if std::env::var("MS_GOLDEN_BLESS").is_ok_and(|v| v == "1") {
        std::fs::create_dir_all(path.parent().expect("fixture dir")).expect("create golden dir");
        std::fs::write(&path, &current).expect("write blessed fixture");
        println!("blessed {}", path.display());
        return;
    }

    let blessed = std::fs::read_to_string(&path).unwrap_or_else(|err| {
        panic!(
            "missing golden fixture {} ({err}); run MS_GOLDEN_BLESS=1 \
             cargo test -p ms-sim --test golden to create it",
            path.display()
        )
    });

    let expected = parse_cases(&blessed);
    let actual = parse_cases(&current);
    let expected_names: Vec<&str> = expected.iter().map(|(n, _)| n.as_str()).collect();
    let actual_names: Vec<&str> = actual.iter().map(|(n, _)| n.as_str()).collect();
    assert_eq!(
        expected_names, actual_names,
        "golden case list changed; re-bless if intentional"
    );

    for ((name, want), (_, got)) in expected.iter().zip(&actual) {
        assert_eq!(
            want.len(),
            got.len(),
            "case {name}: sample count changed ({} blessed vs {} now)",
            want.len(),
            got.len()
        );
        // Report the FIRST diverging index, with both bit patterns and
        // the decoded values — that index is usually enough to tell
        // whether a peak moved, a width changed, or the RNG stream
        // shifted.
        if let Some(i) = (0..want.len()).find(|&i| want[i] != got[i]) {
            let decode = |hex: &str| {
                u64::from_str_radix(hex, 16)
                    .map(f64::from_bits)
                    .unwrap_or(f64::NAN)
            };
            panic!(
                "case {name}: first divergence at sample index {i}: \
                 blessed {} ({:e}) vs current {} ({:e}); {} trailing samples \
                 not compared. Re-bless with MS_GOLDEN_BLESS=1 if this \
                 change is intentional.",
                want[i],
                decode(&want[i]),
                got[i],
                decode(&got[i]),
                want.len() - i - 1,
            );
        }
    }
}

#[test]
fn fixture_renders_identically_twice() {
    // The fixture generator itself must be deterministic, otherwise the
    // golden comparison would be meaningless.
    assert_eq!(render_fixture(), render_fixture());
}
