//! Property-based linearity tests for the ideal line-spectra simulator
//! (Tool 1).
//!
//! The paper's Tool 1 generates mixture spectra "by linear superposition"
//! — these properties pin that down algebraically: superposition over
//! mixture compositions (`sim(a·c1 + b·c2) == a·sim(c1) + b·sim(c2)`),
//! decomposition into fraction-weighted pure spectra, and invariance
//! under permutation of the component listing order.

use chem::fragmentation::GasLibrary;
use chem::Mixture;
use ms_sim::campaign::MS_TASK_SUBSTANCES;
use ms_sim::ideal::IdealSpectrumGenerator;
use proptest::prelude::*;

const TOL: f64 = 1e-9;

fn generator() -> IdealSpectrumGenerator {
    IdealSpectrumGenerator::new(GasLibrary::standard())
}

/// A task mixture built from explicit per-substance weights.
fn task_mixture(weights: &[f64]) -> Mixture {
    Mixture::from_weights(
        MS_TASK_SUBSTANCES
            .iter()
            .zip(weights)
            .map(|(&n, &w)| (n.to_string(), w))
            .collect(),
    )
    .expect("positive weights")
}

/// All m/z positions where either spectrum has a stick — the only places
/// a line spectrum is non-zero.
fn stick_positions(spectra: &[&spectrum::LineSpectrum]) -> Vec<f64> {
    let mut positions: Vec<f64> = spectra
        .iter()
        .flat_map(|s| s.sticks().iter().map(|&(mz, _)| mz))
        .collect();
    positions.sort_by(f64::total_cmp);
    positions.dedup();
    positions
}

fn weights_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.01..1.0f64, MS_TASK_SUBSTANCES.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn superposition_of_compositions(
        w1 in weights_strategy(),
        w2 in weights_strategy(),
        a in 0.05..0.95f64,
    ) {
        // sim(a·c1 + b·c2) == a·sim(c1) + b·sim(c2) with b = 1 - a:
        // blending two compositions then simulating equals blending the
        // two simulated spectra.
        let b = 1.0 - a;
        let gen = generator();
        let m1 = task_mixture(&w1);
        let m2 = task_mixture(&w2);
        let names: Vec<&str> = MS_TASK_SUBSTANCES.to_vec();
        let f1 = m1.fractions_for(&names);
        let f2 = m2.fractions_for(&names);
        let blended = Mixture::from_weights(
            names
                .iter()
                .zip(f1.iter().zip(&f2))
                .map(|(&n, (&x1, &x2))| (n.to_string(), a * x1 + b * x2))
                .collect(),
        )
        .expect("blended weights");

        let sim_blend = gen.generate(&blended).expect("sim blended");
        let sim1 = gen.generate(&m1).expect("sim c1");
        let sim2 = gen.generate(&m2).expect("sim c2");
        for mz in stick_positions(&[&sim_blend, &sim1, &sim2]) {
            let lhs = sim_blend.intensity_at(mz);
            let rhs = a * sim1.intensity_at(mz) + b * sim2.intensity_at(mz);
            prop_assert!(
                (lhs - rhs).abs() <= TOL,
                "superposition violated at m/z {}: {} vs {}", mz, lhs, rhs
            );
        }
    }

    #[test]
    fn mixture_decomposes_into_fraction_weighted_pure_spectra(w in weights_strategy()) {
        let gen = generator();
        let mix = task_mixture(&w);
        let sim = gen.generate(&mix).expect("sim mixture");
        let pures: Vec<(spectrum::LineSpectrum, f64)> = mix
            .iter()
            .map(|(name, frac)| (gen.generate_pure(name).expect("pure"), *frac))
            .collect();
        let pure_refs: Vec<&spectrum::LineSpectrum> =
            pures.iter().map(|(s, _)| s).collect();
        let mut positions = stick_positions(&pure_refs);
        positions.extend(sim.sticks().iter().map(|&(mz, _)| mz));
        for mz in positions {
            let expected: f64 = pures
                .iter()
                .map(|(pure, frac)| frac * pure.intensity_at(mz))
                .sum();
            prop_assert!(
                (sim.intensity_at(mz) - expected).abs() <= TOL,
                "decomposition violated at m/z {}", mz
            );
        }
    }

    #[test]
    fn listing_order_of_components_is_irrelevant(w in weights_strategy(), rot in 0usize..8) {
        // Concentration-permutation invariance: the same composition
        // listed in a rotated order simulates to the same spectrum.
        let gen = generator();
        let mix = task_mixture(&w);
        let rot = rot % mix.parts().len();
        let mut rotated_parts = mix.parts().to_vec();
        rotated_parts.rotate_left(rot);
        let rotated = Mixture::from_fractions(rotated_parts).expect("rotated mixture");

        let sim = gen.generate(&mix).expect("sim");
        let sim_rot = gen.generate(&rotated).expect("sim rotated");
        prop_assert_eq!(sim.sticks().len(), sim_rot.sticks().len());
        for (&(mz_a, i_a), &(mz_b, i_b)) in sim.sticks().iter().zip(sim_rot.sticks()) {
            prop_assert!((mz_a - mz_b).abs() <= TOL);
            prop_assert!(
                (i_a - i_b).abs() <= TOL,
                "permutation changed intensity at m/z {}: {} vs {}", mz_a, i_a, i_b
            );
        }
    }

    #[test]
    fn scaling_all_weights_leaves_the_spectrum_unchanged(
        w in weights_strategy(), scale in 0.1..10.0f64
    ) {
        // Fractions are normalized, so multiplying every raw weight by
        // the same constant is a no-op on the simulated spectrum.
        let gen = generator();
        let scaled: Vec<f64> = w.iter().map(|&x| x * scale).collect();
        let sim = gen.generate(&task_mixture(&w)).expect("sim");
        let sim_scaled = gen.generate(&task_mixture(&scaled)).expect("sim scaled");
        for mz in stick_positions(&[&sim, &sim_scaled]) {
            prop_assert!((sim.intensity_at(mz) - sim_scaled.intensity_at(mz)).abs() <= TOL);
        }
    }
}
