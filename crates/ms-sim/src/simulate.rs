//! Tool 3 as a training-data factory.
//!
//! "With the simulator created in this way, a sufficient number of
//! simulated and labelled measurement series can be generated in minutes
//! to train an artificial neural network" (paper §III.A.1).

use chem::fragmentation::GasLibrary;
use chem::Mixture;
use rand::Rng;
use spectrum::{ContinuousSpectrum, LineSpectrum, UniformAxis};

use crate::ideal::IdealSpectrumGenerator;
use crate::instrument::InstrumentModel;
use crate::MsSimError;

/// A labelled spectra set: flattened spectra plus fraction labels in a
/// fixed substance order. This is the common exchange format between the
/// simulators, the prototype campaigns and the neural pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct LabeledSpectra {
    /// Spectral samples, one `Vec` per spectrum.
    pub inputs: Vec<Vec<f64>>,
    /// Fraction labels, one `Vec` per spectrum, in `substances` order.
    pub labels: Vec<Vec<f64>>,
    /// Substance (output) order.
    pub substances: Vec<String>,
    /// The spectral axis all inputs share.
    pub axis: UniformAxis,
}

impl LabeledSpectra {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// Returns `true` if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// Appends all samples of `other`.
    ///
    /// # Panics
    ///
    /// Panics if the substance order or axis differ (programming error).
    pub fn extend(&mut self, other: LabeledSpectra) {
        assert_eq!(self.substances, other.substances, "substance order");
        assert_eq!(self.axis, other.axis, "axis mismatch");
        self.inputs.extend(other.inputs);
        self.labels.extend(other.labels);
    }

    /// Inputs converted to `f32` rows (neural-network precision).
    pub fn inputs_f32(&self) -> Vec<Vec<f32>> {
        self.inputs
            .iter()
            .map(|row| row.iter().map(|&v| v as f32).collect())
            .collect()
    }

    /// Labels converted to `f32` rows.
    pub fn labels_f32(&self) -> Vec<Vec<f32>> {
        self.labels
            .iter()
            .map(|row| row.iter().map(|&v| v as f32).collect())
            .collect()
    }
}

/// Generates simulated labelled spectra from an (estimated) instrument
/// model — the paper's Tool 3 in its training-data role.
#[derive(Debug, Clone)]
pub struct TrainingSimulator {
    instrument: InstrumentModel,
    generator: IdealSpectrumGenerator,
    substances: Vec<String>,
    axis: UniformAxis,
}

impl TrainingSimulator {
    /// Creates a simulator for a measurement task over `substances`
    /// (the network's output order).
    ///
    /// # Errors
    ///
    /// Returns [`MsSimError::Chem`] if a substance is missing from the
    /// library, or [`MsSimError::InvalidInstrument`] if the model is
    /// invalid.
    pub fn new(
        instrument: InstrumentModel,
        library: GasLibrary,
        substances: Vec<String>,
        axis: UniformAxis,
    ) -> Result<Self, MsSimError> {
        instrument.validate()?;
        for s in &substances {
            library.require(s)?;
        }
        Ok(Self {
            instrument,
            generator: IdealSpectrumGenerator::new(library),
            substances,
            axis,
        })
    }

    /// The substance (label) order.
    pub fn substances(&self) -> &[String] {
        &self.substances
    }

    /// The spectral axis.
    pub fn axis(&self) -> &UniformAxis {
        &self.axis
    }

    /// The instrument model in use.
    pub fn instrument(&self) -> &InstrumentModel {
        &self.instrument
    }

    /// The full sample line spectrum for a mixture: ideal superposition
    /// plus the modelled ignition-gas contribution.
    ///
    /// # Errors
    ///
    /// Returns [`MsSimError::Chem`] on unknown components.
    pub fn sample_line(&self, mixture: &Mixture) -> Result<LineSpectrum, MsSimError> {
        let mut line = self.generator.generate(mixture)?;
        if let Some((gas, level)) = &self.instrument.ignition_gas {
            if *level > 0.0 {
                let pattern = self.generator.library().require(gas)?.response_spectrum();
                line = LineSpectrum::superpose(&[(&line, 1.0), (&pattern, *level)])?;
            }
        }
        Ok(line)
    }

    /// Simulates one noisy measurement of `mixture`.
    ///
    /// # Errors
    ///
    /// Returns [`MsSimError::Chem`] on unknown components.
    pub fn simulate_measurement<R: Rng + ?Sized>(
        &self,
        mixture: &Mixture,
        rng: &mut R,
    ) -> Result<ContinuousSpectrum, MsSimError> {
        let line = self.sample_line(mixture)?;
        Ok(self.instrument.measure(&line, &self.axis, rng))
    }

    /// Simulates the noiseless rendered spectrum of `mixture` (Figure 4's
    /// orange trace without the stochastic part).
    ///
    /// # Errors
    ///
    /// Returns [`MsSimError::Chem`] on unknown components.
    pub fn simulate_clean(&self, mixture: &Mixture) -> Result<ContinuousSpectrum, MsSimError> {
        let line = self.sample_line(mixture)?;
        Ok(self.instrument.render(&line, &self.axis, 0.0))
    }

    /// Generates `count` labelled training spectra at random mixture
    /// compositions (uniform on the simplex over the task substances).
    ///
    /// # Errors
    ///
    /// Returns [`MsSimError::Chem`] on unknown components.
    pub fn generate_dataset<R: Rng + ?Sized>(
        &self,
        count: usize,
        rng: &mut R,
    ) -> Result<LabeledSpectra, MsSimError> {
        let _span = obs::span!("ms.generate_dataset");
        let names: Vec<&str> = self.substances.iter().map(String::as_str).collect();
        let mut inputs = Vec::with_capacity(count);
        let mut labels = Vec::with_capacity(count);
        for _ in 0..count {
            let mixture = Mixture::random(&names, rng)?;
            let spectrum = self.simulate_measurement(&mixture, rng)?;
            inputs.push(spectrum.into_intensities());
            labels.push(mixture.fractions_for(&names));
            obs::counter_add("ms.spectra_generated", 1);
        }
        Ok(LabeledSpectra {
            inputs,
            labels,
            substances: self.substances.clone(),
            axis: self.axis,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instrument::{default_axis, nominal_instrument};
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn simulator() -> TrainingSimulator {
        TrainingSimulator::new(
            nominal_instrument(),
            GasLibrary::standard(),
            vec!["N2".into(), "O2".into(), "Ar".into(), "CO2".into()],
            default_axis(),
        )
        .unwrap()
    }

    fn rng() -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(9)
    }

    #[test]
    fn unknown_substance_is_rejected() {
        let result = TrainingSimulator::new(
            nominal_instrument(),
            GasLibrary::standard(),
            vec!["Kryptonite".into()],
            default_axis(),
        );
        assert!(matches!(result, Err(MsSimError::Chem(_))));
    }

    #[test]
    fn sample_line_includes_ignition_gas() {
        let sim = simulator();
        let mix = Mixture::pure("N2");
        let line = sim.sample_line(&mix).unwrap();
        assert!(line.intensity_at(4.0) > 0.0, "He peak missing");
    }

    #[test]
    fn dataset_has_simplex_labels() {
        let sim = simulator();
        let data = sim.generate_dataset(20, &mut rng()).unwrap();
        assert_eq!(data.len(), 20);
        for label in &data.labels {
            assert_eq!(label.len(), 4);
            let sum: f64 = label.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9);
            assert!(label.iter().all(|&v| v >= 0.0));
        }
        for input in &data.inputs {
            assert_eq!(input.len(), default_axis().len());
        }
    }

    #[test]
    fn clean_simulation_is_deterministic() {
        let sim = simulator();
        let mix = Mixture::from_fractions(vec![("N2".into(), 0.6), ("O2".into(), 0.4)]).unwrap();
        assert_eq!(
            sim.simulate_clean(&mix).unwrap(),
            sim.simulate_clean(&mix).unwrap()
        );
    }

    #[test]
    fn noisy_measurements_vary() {
        let mut instrument = nominal_instrument();
        instrument.noise.gaussian.sigma = 0.01;
        let sim = TrainingSimulator::new(
            instrument,
            GasLibrary::standard(),
            vec!["N2".into(), "O2".into()],
            default_axis(),
        )
        .unwrap();
        let mix = Mixture::from_fractions(vec![("N2".into(), 0.5), ("O2".into(), 0.5)]).unwrap();
        let mut r = rng();
        let a = sim.simulate_measurement(&mix, &mut r).unwrap();
        let b = sim.simulate_measurement(&mix, &mut r).unwrap();
        assert_ne!(a, b);
    }

    #[test]
    fn extend_concatenates() {
        let sim = simulator();
        let mut a = sim.generate_dataset(5, &mut rng()).unwrap();
        let b = sim.generate_dataset(3, &mut rng()).unwrap();
        a.extend(b);
        assert_eq!(a.len(), 8);
    }

    #[test]
    fn f32_conversion_preserves_shape() {
        let sim = simulator();
        let data = sim.generate_dataset(4, &mut rng()).unwrap();
        let inputs = data.inputs_f32();
        let labels = data.labels_f32();
        assert_eq!(inputs.len(), 4);
        assert_eq!(inputs[0].len(), data.inputs[0].len());
        assert_eq!(labels[0].len(), 4);
    }
}
