//! The parametric instrument model behind Tool 3.
//!
//! "These ideal spectra are converted into a continuous spectrum with the
//! desired resolution using the characteristics of the real measuring
//! system" (paper §III.A.1). The characteristics are: peak broadening
//! ("deformation of the peaks to a curve"), mass-dependent attenuation,
//! drift, a noise model, and the ever-present ignition-gas peak.

use rand::Rng;
use serde::{Deserialize, Serialize};
use spectrum::noise::NoiseModel;
use spectrum::{ContinuousSpectrum, LineSpectrum, UniformAxis};

use crate::MsSimError;

/// Natural log of 2 (Gaussian FWHM parameterization).
const LN2: f64 = std::f64::consts::LN_2;

/// A linear-in-m/z peak-width law: `fwhm(mz) = base + slope * mz`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PeakWidthLaw {
    /// Width at m/z 0.
    pub base: f64,
    /// Width increase per m/z unit.
    pub slope: f64,
}

impl PeakWidthLaw {
    /// The FWHM at a given m/z, floored to a small positive value.
    pub fn fwhm_at(&self, mz: f64) -> f64 {
        (self.base + self.slope * mz).max(0.05)
    }
}

/// An exponential mass-dependent attenuation law:
/// `gain(mz) = amplitude * exp(rate * mz)` — the "frequency-dependent
/// attenuation" of the paper (typically `rate < 0`: heavy ions are
/// transmitted less efficiently).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AttenuationLaw {
    /// Gain at m/z 0.
    pub amplitude: f64,
    /// Exponential rate per m/z unit.
    pub rate: f64,
}

impl AttenuationLaw {
    /// The gain at a given m/z.
    pub fn gain_at(&self, mz: f64) -> f64 {
        self.amplitude * (self.rate * mz).exp()
    }
}

/// The complete parametric instrument model.
///
/// Everything in this struct is what Tool 2 can, in principle, estimate
/// from measurements. Hidden prototype-only quirks live in
/// [`crate::prototype::MmsPrototype`], *not* here.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InstrumentModel {
    /// Peak broadening law.
    pub peak_width: PeakWidthLaw,
    /// Mass-dependent attenuation.
    pub attenuation: AttenuationLaw,
    /// Static mass-calibration offset (m/z units).
    pub mass_offset: f64,
    /// Stochastic noise model.
    pub noise: NoiseModel,
    /// Ignition gas (name and effective level) whose peak appears in every
    /// measurement — the peak "which has no counterpart in the line
    /// spectrum" of the paper's Figure 4.
    pub ignition_gas: Option<(String, f64)>,
}

impl InstrumentModel {
    /// Validates the parameters.
    ///
    /// # Errors
    ///
    /// Returns [`MsSimError::InvalidInstrument`] if widths or gains are
    /// non-positive/non-finite.
    pub fn validate(&self) -> Result<(), MsSimError> {
        if !(self.peak_width.base.is_finite() && self.peak_width.base > 0.0) {
            return Err(MsSimError::InvalidInstrument(format!(
                "peak width base {}",
                self.peak_width.base
            )));
        }
        if !self.peak_width.slope.is_finite() {
            return Err(MsSimError::InvalidInstrument("peak width slope".into()));
        }
        if !(self.attenuation.amplitude.is_finite() && self.attenuation.amplitude > 0.0) {
            return Err(MsSimError::InvalidInstrument(format!(
                "attenuation amplitude {}",
                self.attenuation.amplitude
            )));
        }
        if !self.mass_offset.is_finite() {
            return Err(MsSimError::InvalidInstrument("mass offset".into()));
        }
        if let Some((_, level)) = &self.ignition_gas {
            if !(level.is_finite() && *level >= 0.0) {
                return Err(MsSimError::InvalidInstrument(format!(
                    "ignition gas level {level}"
                )));
            }
        }
        Ok(())
    }

    /// Renders an ideal line spectrum into a noiseless continuous spectrum
    /// on `axis`: attenuation, mass offset (plus `extra_offset`, used by
    /// the prototype for drift) and per-peak Gaussian broadening. The
    /// ignition-gas peak is *not* added here — callers compose the full
    /// sample line spectrum first.
    pub fn render(
        &self,
        line: &LineSpectrum,
        axis: &UniformAxis,
        extra_offset: f64,
    ) -> ContinuousSpectrum {
        let mut samples = vec![0.0f64; axis.len()];
        for &(mz, intensity) in line {
            let gain = self.attenuation.gain_at(mz);
            let amp = intensity * gain;
            if amp <= 0.0 {
                continue;
            }
            let center = mz + self.mass_offset + extra_offset;
            let fwhm = self.peak_width.fwhm_at(mz);
            let sigma = fwhm / (2.0 * (2.0 * LN2).sqrt());
            let height = amp / (sigma * (2.0 * std::f64::consts::PI).sqrt());
            let support = 5.0 * fwhm;
            let lo = axis.position_of(center - support).floor().max(0.0) as usize;
            let hi = (axis.position_of(center + support).ceil() as isize)
                .clamp(0, axis.len() as isize - 1) as usize;
            if lo > hi {
                continue;
            }
            for (idx, slot) in samples.iter_mut().enumerate().take(hi + 1).skip(lo) {
                let z = (axis.value_at(idx) - center) / sigma;
                *slot += height * (-0.5 * z * z).exp();
            }
        }
        ContinuousSpectrum::from_parts(*axis, samples).expect("finite render")
    }

    /// Performs one simulated measurement: render, then apply the noise
    /// model and clamp to non-negative detector counts.
    pub fn measure<R: Rng + ?Sized>(
        &self,
        line: &LineSpectrum,
        axis: &UniformAxis,
        rng: &mut R,
    ) -> ContinuousSpectrum {
        let mut spectrum = self.render(line, axis, 0.0);
        self.noise.apply(&mut spectrum, rng);
        spectrum.clamp_non_negative();
        spectrum
    }
}

/// The default axis of the MMS prototype: m/z 1–100 at step 0.25
/// (397 points — the input size of the paper's Table 1 network).
pub fn default_axis() -> UniformAxis {
    UniformAxis::from_range(1.0, 100.0, 0.25).expect("static axis is valid")
}

/// A reasonable starting instrument model for tests and examples.
pub fn nominal_instrument() -> InstrumentModel {
    InstrumentModel {
        peak_width: PeakWidthLaw {
            base: 0.45,
            slope: 0.002,
        },
        attenuation: AttenuationLaw {
            amplitude: 1.0,
            rate: -1.0 / 250.0,
        },
        mass_offset: 0.0,
        noise: NoiseModel::silent(),
        ignition_gas: Some(("He".into(), 0.25)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn line() -> LineSpectrum {
        LineSpectrum::from_sticks(vec![(28.0, 1.0), (80.0, 1.0)]).unwrap()
    }

    #[test]
    fn default_axis_has_397_points() {
        assert_eq!(default_axis().len(), 397);
    }

    #[test]
    fn render_centers_peaks_with_offset() {
        let mut model = nominal_instrument();
        model.mass_offset = 0.5;
        let spec = model.render(&line(), &default_axis(), 0.0);
        // Find the local max near 28.5.
        let idx = default_axis().nearest_index(28.5).unwrap();
        let window = &spec.intensities()[idx - 4..idx + 5];
        let max = window.iter().cloned().fold(f64::MIN, f64::max);
        assert_eq!(spec.intensities()[idx], max);
    }

    #[test]
    fn attenuation_suppresses_heavy_ions() {
        let model = nominal_instrument();
        let spec = model.render(&line(), &default_axis(), 0.0);
        let low = spec.sample_at(28.0);
        let high = spec.sample_at(80.0);
        // Equal stick intensities, but width grows and gain falls with m/z.
        assert!(high < low, "high {high} vs low {low}");
    }

    #[test]
    fn width_grows_with_mass() {
        let model = nominal_instrument();
        let spec = model.render(&line(), &default_axis(), 0.0);
        let axis = default_axis();
        let count_above_half = |center: f64| {
            let peak = spec.sample_at(center);
            axis.values()
                .iter()
                .filter(|&&x| (x - center).abs() < 2.0 && spec.sample_at(x) > peak / 2.0)
                .count()
        };
        assert!(count_above_half(80.0) >= count_above_half(28.0));
    }

    #[test]
    fn area_is_conserved_per_peak() {
        let model = InstrumentModel {
            attenuation: AttenuationLaw {
                amplitude: 1.0,
                rate: 0.0,
            },
            ..nominal_instrument()
        };
        let single = LineSpectrum::from_sticks(vec![(50.0, 2.0)]).unwrap();
        let spec = model.render(&single, &default_axis(), 0.0);
        assert!((spec.area() - 2.0).abs() < 0.02, "area {}", spec.area());
    }

    #[test]
    fn measure_is_deterministic_given_seed() {
        let model = nominal_instrument();
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let s1 = model.measure(&line(), &default_axis(), &mut a);
        let s2 = model.measure(&line(), &default_axis(), &mut b);
        assert_eq!(s1, s2);
    }

    #[test]
    fn measure_clamps_non_negative() {
        let mut model = nominal_instrument();
        model.noise.gaussian.sigma = 0.5;
        let mut rng = ChaCha8Rng::seed_from_u64(2);
        let spec = model.measure(&line(), &default_axis(), &mut rng);
        assert!(spec.intensities().iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn validation_catches_garbage() {
        let mut model = nominal_instrument();
        model.peak_width.base = 0.0;
        assert!(model.validate().is_err());
        let mut model = nominal_instrument();
        model.attenuation.amplitude = -1.0;
        assert!(model.validate().is_err());
        let mut model = nominal_instrument();
        model.ignition_gas = Some(("He".into(), f64::NAN));
        assert!(model.validate().is_err());
        assert!(nominal_instrument().validate().is_ok());
    }

    #[test]
    fn laws_evaluate() {
        let w = PeakWidthLaw {
            base: 0.4,
            slope: 0.002,
        };
        assert!((w.fwhm_at(50.0) - 0.5).abs() < 1e-12);
        let a = AttenuationLaw {
            amplitude: 2.0,
            rate: 0.0,
        };
        assert_eq!(a.gain_at(10.0), 2.0);
    }
}
