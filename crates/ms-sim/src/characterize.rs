//! Tool 2: automatic generation of the instrument simulator from measured
//! data.
//!
//! "Characteristics of the measurement system such as the deformation of
//! the peaks to a curve, the frequency-dependent attenuation, the drift
//! and the noise model are to be obtained from real measurements"
//! (paper §III.A.1). Given labelled measurement series of known mixtures,
//! this module estimates an [`InstrumentModel`]:
//!
//! * peak-width law — Gaussian second moments of strong isolated peaks;
//! * mass offset — centroid displacement of those peaks;
//! * attenuation law — log-linear regression of measured peak area over
//!   ideal stick intensity against m/z;
//! * white-noise level — high-frequency content of peak-free regions;
//! * ignition-gas level — residual response at the ignition-gas base peak.
//!
//! Deliberately *not* estimated (the paper's simulator has the same
//! blind spots, which is what creates the sim-to-real gap): per-
//! measurement gain fluctuation, humidity impurities, O₂ sensitivity
//! drift, and mass jitter.

use chem::fragmentation::GasLibrary;
use spectrum::linalg::{lstsq, Matrix};
use spectrum::noise::{GaussianNoise, NoiseModel};
use spectrum::UniformAxis;

use crate::ideal::IdealSpectrumGenerator;
use crate::instrument::{AttenuationLaw, InstrumentModel, PeakWidthLaw};
use crate::prototype::MeasuredSample;
use crate::MsSimError;

/// Half-width (m/z) of the window integrated around each expected peak.
const WINDOW: f64 = 1.4;
/// Minimum relative intensity for a stick to be used for estimation.
const MIN_RELATIVE_INTENSITY: f64 = 0.15;
/// Minimum distance to the nearest other stick for a peak to count as
/// isolated.
const ISOLATION: f64 = 2.0;

/// Diagnostics of one characterization run.
#[derive(Debug, Clone, PartialEq)]
pub struct CharacterizationReport {
    /// The estimated instrument model.
    pub model: InstrumentModel,
    /// Number of `(m/z, width)` points behind the width law.
    pub width_points: usize,
    /// Number of `(m/z, response)` points behind the attenuation law.
    pub response_points: usize,
    /// Number of measurements consumed.
    pub measurements: usize,
}

/// Estimates instrument models from labelled measurement series.
#[derive(Debug, Clone)]
pub struct Characterizer {
    library: GasLibrary,
    ignition_gas: Option<String>,
}

impl Characterizer {
    /// Creates a characterizer. `ignition_gas` is the known carrier/
    /// ignition gas whose level should be estimated (its peak appears in
    /// every measurement regardless of the sample).
    pub fn new(library: GasLibrary, ignition_gas: Option<String>) -> Self {
        Self {
            library,
            ignition_gas,
        }
    }

    /// Runs the estimation over labelled measurements.
    ///
    /// # Errors
    ///
    /// Returns [`MsSimError::Characterization`] if no usable peaks are
    /// found (e.g. empty input or unsuitable mixtures), and
    /// [`MsSimError::Chem`] if a mixture references an unknown gas.
    pub fn characterize(
        &self,
        samples: &[MeasuredSample],
    ) -> Result<CharacterizationReport, MsSimError> {
        if samples.is_empty() {
            return Err(MsSimError::Characterization("no measurements".into()));
        }
        let generator = IdealSpectrumGenerator::new(self.library.clone());
        let mut width_points: Vec<(f64, f64)> = Vec::new();
        let mut offset_points: Vec<f64> = Vec::new();
        let mut response_points: Vec<(f64, f64)> = Vec::new(); // (mz, ln ratio)
        let mut noise_samples: Vec<f64> = Vec::new();
        let mut ignition_areas: Vec<f64> = Vec::new();

        for sample in samples {
            let axis = *sample.spectrum.axis();
            let ideal = generator.generate(&sample.mixture)?;
            let sticks = ideal.sticks();
            let strongest = ideal.base_peak().map_or(0.0, |(_, i)| i);
            if strongest <= 0.0 {
                continue;
            }
            // Strong, isolated, in-range sticks.
            for &(mz, intensity) in sticks {
                if intensity < MIN_RELATIVE_INTENSITY * strongest {
                    continue;
                }
                if !axis.contains(mz - WINDOW) || !axis.contains(mz + WINDOW) {
                    continue;
                }
                let isolated = sticks.iter().all(|&(other, other_int)| {
                    other == mz
                        || (other - mz).abs() >= ISOLATION
                        || other_int < 0.02 * intensity
                });
                if !isolated {
                    continue;
                }
                if let Some((area, centroid, fwhm)) =
                    peak_moments(&sample.spectrum, &axis, mz, WINDOW)
                {
                    if area > 0.0 && fwhm > 0.0 {
                        width_points.push((mz, fwhm));
                        offset_points.push(centroid - mz);
                        response_points.push((mz, (area / intensity).max(1e-9).ln()));
                    }
                }
            }
            // Ignition-gas base-peak area (only when absent from the mixture).
            if let Some(gas) = &self.ignition_gas {
                if sample.mixture.fraction_of(gas) == 0.0 {
                    if let Some(pattern) = self.library.get(gas) {
                        if let Some((mz, _)) = pattern.response_spectrum().base_peak() {
                            if axis.contains(mz - WINDOW) && axis.contains(mz + WINDOW) {
                                if let Some((area, _, _)) =
                                    peak_moments(&sample.spectrum, &axis, mz, WINDOW)
                                {
                                    ignition_areas.push(area.max(0.0));
                                }
                            }
                        }
                    }
                }
            }
            // Noise from peak-free regions: samples further than 3 m/z from
            // every expected stick (including ignition gas).
            let mut guard: Vec<f64> = sticks.iter().map(|&(m, _)| m).collect();
            if let Some(gas) = &self.ignition_gas {
                if let Some(pattern) = self.library.get(gas) {
                    guard.extend(pattern.response_spectrum().sticks().iter().map(|&(m, _)| m));
                }
            }
            let mut run: Vec<f64> = Vec::new();
            for (x, y) in sample.spectrum.iter() {
                let free = guard.iter().all(|&g| (x - g).abs() > 3.0);
                if free {
                    run.push(y);
                } else if run.len() >= 8 {
                    noise_samples.extend(high_frequency_noise(&run));
                    run.clear();
                } else {
                    run.clear();
                }
            }
            if run.len() >= 8 {
                noise_samples.extend(high_frequency_noise(&run));
            }
        }

        if width_points.len() < 2 || response_points.len() < 2 {
            return Err(MsSimError::Characterization(format!(
                "too few usable peaks ({} width, {} response points)",
                width_points.len(),
                response_points.len()
            )));
        }

        let peak_width = fit_linear_law(&width_points)
            .map(|(a, b)| PeakWidthLaw { base: a, slope: b })
            .ok_or_else(|| MsSimError::Characterization("width fit failed".into()))?;
        let (log_amp, rate) = fit_linear_law(&response_points)
            .ok_or_else(|| MsSimError::Characterization("attenuation fit failed".into()))?;
        let attenuation = AttenuationLaw {
            amplitude: log_amp.exp(),
            rate,
        };
        let mass_offset = offset_points.iter().sum::<f64>() / offset_points.len() as f64;
        let sigma = if noise_samples.is_empty() {
            0.0
        } else {
            (noise_samples.iter().map(|v| v * v).sum::<f64>() / noise_samples.len() as f64).sqrt()
        };
        let ignition_gas = match (&self.ignition_gas, ignition_areas.is_empty()) {
            (Some(gas), false) => {
                let mean_area =
                    ignition_areas.iter().sum::<f64>() / ignition_areas.len() as f64;
                let pattern = self.library.require(gas)?;
                let base_mz = pattern
                    .response_spectrum()
                    .base_peak()
                    .map_or(0.0, |(m, _)| m);
                let base_int = pattern
                    .response_spectrum()
                    .base_peak()
                    .map_or(1.0, |(_, i)| i);
                let gain = attenuation.gain_at(base_mz).max(1e-9);
                Some((gas.clone(), (mean_area / (gain * base_int)).max(0.0)))
            }
            (Some(gas), true) => Some((gas.clone(), 0.0)),
            (None, _) => None,
        };

        let model = InstrumentModel {
            peak_width: PeakWidthLaw {
                base: peak_width.base.max(0.05),
                slope: peak_width.slope,
            },
            attenuation,
            mass_offset,
            noise: NoiseModel {
                gaussian: GaussianNoise { sigma },
                ..NoiseModel::silent()
            },
            ignition_gas,
        };
        model.validate()?;
        Ok(CharacterizationReport {
            model,
            width_points: width_points.len(),
            response_points: response_points.len(),
            measurements: samples.len(),
        })
    }
}

/// Relative peak height below which window samples are treated as noise
/// floor and excluded from the moment sums.
const MOMENT_THRESHOLD: f64 = 0.05;
/// Variance retained by a Gaussian truncated at 5 % of its peak height
/// (`|z| <= 2.4477`): `1 - 2aφ(a) / (2Φ(a) - 1)`.
const TRUNCATED_VARIANCE_FACTOR: f64 = 0.9007;
/// Probability mass of a Gaussian within the 5 %-height truncation.
const TRUNCATED_MASS_FACTOR: f64 = 0.98568;

/// Baseline-corrected area, centroid and FWHM of the peak inside
/// `center ± window`. Samples below 5 % of the local maximum are excluded
/// (they are dominated by the clamped noise floor) and the moments are
/// corrected for that truncation and for the sampling step. Returns
/// `None` for degenerate windows.
fn peak_moments(
    spectrum: &spectrum::ContinuousSpectrum,
    axis: &UniformAxis,
    center: f64,
    window: f64,
) -> Option<(f64, f64, f64)> {
    let lo = axis.nearest_index(center - window)?;
    let hi = axis.nearest_index(center + window)?;
    if hi <= lo + 3 {
        return None;
    }
    let ys = &spectrum.intensities()[lo..=hi];
    // Local baseline: mean of the two edge samples on each side.
    let baseline = (ys[0] + ys[1] + ys[ys.len() - 2] + ys[ys.len() - 1]) / 4.0;
    let vmax = ys
        .iter()
        .map(|&y| (y - baseline).max(0.0))
        .fold(0.0f64, f64::max);
    if vmax <= 0.0 {
        return None;
    }
    let threshold = MOMENT_THRESHOLD * vmax;
    let mut area = 0.0;
    let mut first = 0.0;
    let mut second = 0.0;
    for (k, &y) in ys.iter().enumerate() {
        let x = axis.value_at(lo + k);
        let v = (y - baseline).max(0.0);
        if v < threshold {
            continue;
        }
        area += v;
        first += v * x;
        second += v * x * x;
    }
    if area <= 0.0 {
        return None;
    }
    let centroid = first / area;
    let step_var = axis.step() * axis.step() / 12.0;
    let raw_variance = (second / area - centroid * centroid - step_var).max(0.0);
    let variance = raw_variance / TRUNCATED_VARIANCE_FACTOR;
    let fwhm = 2.0 * (2.0 * std::f64::consts::LN_2 * variance).sqrt();
    let corrected_area = area * axis.step() / TRUNCATED_MASS_FACTOR;
    Some((corrected_area, centroid, fwhm))
}

/// White-noise estimates from first differences of a peak-free run
/// (differencing removes slow drift; `diff/sqrt(2)` has the sample σ).
fn high_frequency_noise(run: &[f64]) -> Vec<f64> {
    run.windows(2)
        .map(|w| (w[1] - w[0]) / std::f64::consts::SQRT_2)
        .collect()
}

/// Least-squares fit of `y = a + b x` over `(x, y)` points.
fn fit_linear_law(points: &[(f64, f64)]) -> Option<(f64, f64)> {
    if points.len() < 2 {
        return None;
    }
    let rows: Vec<Vec<f64>> = points.iter().map(|&(x, _)| vec![1.0, x]).collect();
    let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
    let design = Matrix::from_rows(&row_refs);
    let ys: Vec<f64> = points.iter().map(|&(_, y)| y).collect();
    lstsq(&design, &ys, 1e-9).ok().map(|c| (c[0], c[1]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::calibration_mixtures;
    use crate::prototype::{ideal_config, MmsPrototype, PrototypeConfig};

    fn characterizer() -> Characterizer {
        Characterizer::new(GasLibrary::standard(), Some("He".into()))
    }

    fn collect_samples(noise_free: bool, per_mixture: usize, seed: u64) -> Vec<MeasuredSample> {
        let config = if noise_free {
            ideal_config()
        } else {
            PrototypeConfig::default()
        };
        let mut mms = MmsPrototype::with_config(seed, config);
        let mixtures = calibration_mixtures();
        let mut out = Vec::new();
        for mixture in &mixtures {
            out.extend(mms.measure_series(mixture, per_mixture).unwrap());
        }
        out
    }

    #[test]
    fn recovers_width_law_on_clean_data() {
        // The usable strong peaks cluster between m/z ~16 and ~45, so the
        // intercept at m/z 0 is poorly determined — what the simulator
        // needs is the predicted FWHM *inside* that range (true law:
        // 0.45 + 0.002*mz).
        let samples = collect_samples(true, 3, 1);
        let report = characterizer().characterize(&samples).unwrap();
        for mz in [20.0, 28.0, 44.0] {
            let predicted = report.model.peak_width.fwhm_at(mz);
            let expected = 0.45 + 0.002 * mz;
            assert!(
                (predicted - expected).abs() < 0.07,
                "fwhm at {mz}: predicted {predicted}, expected {expected}"
            );
        }
    }

    #[test]
    fn recovers_mass_offset() {
        let samples = collect_samples(true, 3, 2);
        let report = characterizer().characterize(&samples).unwrap();
        assert!(
            (report.model.mass_offset - 0.04).abs() < 0.03,
            "offset {}",
            report.model.mass_offset
        );
    }

    #[test]
    fn recovers_attenuation_trend() {
        let samples = collect_samples(true, 3, 3);
        let report = characterizer().characterize(&samples).unwrap();
        // True rate: -1/250 = -0.004.
        assert!(
            report.model.attenuation.rate < 0.0,
            "rate {}",
            report.model.attenuation.rate
        );
        assert!(
            (report.model.attenuation.rate + 0.004).abs() < 0.004,
            "rate {}",
            report.model.attenuation.rate
        );
        assert!((report.model.attenuation.amplitude - 1.0).abs() < 0.3);
    }

    #[test]
    fn estimates_ignition_gas_level() {
        let samples = collect_samples(true, 3, 4);
        let report = characterizer().characterize(&samples).unwrap();
        let (gas, level) = report.model.ignition_gas.clone().unwrap();
        assert_eq!(gas, "He");
        assert!((level - 0.25).abs() < 0.05, "level {level}");
    }

    #[test]
    fn noise_estimate_is_positive_on_noisy_data() {
        let samples = collect_samples(false, 5, 5);
        let report = characterizer().characterize(&samples).unwrap();
        let sigma = report.model.noise.gaussian.sigma;
        assert!(sigma > 1e-4, "sigma {sigma}");
        assert!(sigma < 0.05, "sigma {sigma}");
    }

    #[test]
    fn more_samples_tighten_width_estimates() {
        // Estimates from many samples should be closer to the truth than
        // from very few, on noisy data.
        let few = characterizer()
            .characterize(&collect_samples(false, 2, 6))
            .unwrap();
        let many = characterizer()
            .characterize(&collect_samples(false, 40, 6))
            .unwrap();
        let err_few = (few.model.peak_width.base - 0.45).abs();
        let err_many = (many.model.peak_width.base - 0.45).abs();
        assert!(
            err_many <= err_few + 0.02,
            "few {err_few}, many {err_many}"
        );
    }

    #[test]
    fn empty_input_fails() {
        assert!(matches!(
            characterizer().characterize(&[]),
            Err(MsSimError::Characterization(_))
        ));
    }

    #[test]
    fn report_counts_points() {
        let samples = collect_samples(true, 2, 7);
        let report = characterizer().characterize(&samples).unwrap();
        assert_eq!(report.measurements, samples.len());
        assert!(report.width_points > 10);
        assert!(report.response_points > 10);
    }
}
