use std::fmt;

use chem::ChemError;
use spectrum::SpectrumError;

/// Error type for the MS toolchain.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MsSimError {
    /// A chemical-domain error (unknown gas, invalid mixture).
    Chem(ChemError),
    /// A spectral-processing error.
    Spectrum(SpectrumError),
    /// Characterization could not extract a parameter (too few usable
    /// peaks or measurements).
    Characterization(String),
    /// An instrument-model parameter was out of range.
    InvalidInstrument(String),
}

impl fmt::Display for MsSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MsSimError::Chem(err) => write!(f, "chemistry error: {err}"),
            MsSimError::Spectrum(err) => write!(f, "spectrum error: {err}"),
            MsSimError::Characterization(msg) => write!(f, "characterization failed: {msg}"),
            MsSimError::InvalidInstrument(msg) => write!(f, "invalid instrument model: {msg}"),
        }
    }
}

impl std::error::Error for MsSimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            MsSimError::Chem(err) => Some(err),
            MsSimError::Spectrum(err) => Some(err),
            _ => None,
        }
    }
}

impl From<ChemError> for MsSimError {
    fn from(err: ChemError) -> Self {
        MsSimError::Chem(err)
    }
}

impl From<SpectrumError> for MsSimError {
    fn from(err: SpectrumError) -> Self {
        MsSimError::Spectrum(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_sources() {
        let err = MsSimError::from(SpectrumError::Empty);
        assert!(std::error::Error::source(&err).is_some());
        let err = MsSimError::from(ChemError::Empty);
        assert!(err.to_string().contains("chemistry"));
    }
}
