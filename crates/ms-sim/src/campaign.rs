//! Measurement campaigns on the MMS prototype.
//!
//! "To evaluate the networks with measured data, we mixed gases with
//! known spectra by using mass flow controllers, allowing us to create
//! mixtures with controlled concentrations of compounds" (paper
//! §III.A.3). "In each case, 14 different mixtures were used"
//! (§III.A.2, sample-size study).

use chem::Mixture;
use spectrum::UniformAxis;

use crate::prototype::{MeasuredSample, MmsPrototype};
use crate::simulate::LabeledSpectra;
use crate::MsSimError;

/// The measurement task of the MMS project: the eight substances the
/// network reports, in output order. H₂O is included as a *detectable*
/// substance although no calibration mixture purposely contains it — the
/// paper: "H₂O was no purposed compound, but air humidity caused a signal
/// ... Therefore, the ANN is able to detect water, but the reference gas
/// should not contain water."
pub const MS_TASK_SUBSTANCES: [&str; 8] = ["H2", "CH4", "H2O", "N2", "O2", "Ar", "CO2", "C3H8"];

/// The 14 deterministic calibration mixtures used to parameterize the
/// simulator and to evaluate trained networks. Compositions cover pure
/// gases, binary, ternary and broad mixtures over the task substances
/// (H₂O excluded by design).
pub fn calibration_mixtures() -> Vec<Mixture> {
    let recipes: [&[(&str, f64)]; 14] = [
        &[("N2", 1.0)],
        &[("Ar", 1.0)],
        &[("CO2", 1.0)],
        &[("N2", 0.8), ("O2", 0.2)],
        &[("N2", 0.5), ("O2", 0.5)],
        &[("N2", 0.9), ("CO2", 0.1)],
        &[("Ar", 0.6), ("CO2", 0.4)],
        &[("H2", 0.3), ("N2", 0.7)],
        &[("CH4", 0.4), ("N2", 0.6)],
        &[("C3H8", 0.25), ("CO2", 0.25), ("N2", 0.5)],
        &[("N2", 0.4), ("O2", 0.3), ("Ar", 0.3)],
        &[("H2", 0.1), ("CH4", 0.2), ("N2", 0.4), ("CO2", 0.3)],
        &[("N2", 0.25), ("O2", 0.25), ("Ar", 0.25), ("CO2", 0.25)],
        &[
            ("H2", 0.1),
            ("CH4", 0.1),
            ("N2", 0.3),
            ("O2", 0.15),
            ("Ar", 0.15),
            ("C3H8", 0.1),
            ("CO2", 0.1),
        ],
    ];
    recipes
        .iter()
        .map(|parts| {
            Mixture::from_fractions(parts.iter().map(|&(n, f)| (n.to_string(), f)).collect())
                .expect("static recipes are valid")
        })
        .collect()
}

/// Measures every calibration mixture `samples_per_mixture` times on the
/// prototype, returning all samples in mixture order.
///
/// # Errors
///
/// Propagates measurement errors from the prototype.
pub fn run_calibration_campaign(
    prototype: &mut MmsPrototype,
    samples_per_mixture: usize,
) -> Result<Vec<MeasuredSample>, MsSimError> {
    let mut out = Vec::with_capacity(14 * samples_per_mixture);
    for mixture in calibration_mixtures() {
        out.extend(prototype.measure_series(&mixture, samples_per_mixture)?);
    }
    Ok(out)
}

/// Converts measured samples into a [`LabeledSpectra`] set with labels in
/// [`MS_TASK_SUBSTANCES`] order — the measured evaluation data of
/// Figures 5–7.
///
/// # Errors
///
/// Returns [`MsSimError::Characterization`] if `samples` is empty or the
/// samples disagree on their axis.
pub fn to_labeled_spectra(samples: &[MeasuredSample]) -> Result<LabeledSpectra, MsSimError> {
    let first_axis: UniformAxis = match samples.first() {
        Some(s) => *s.spectrum.axis(),
        None => return Err(MsSimError::Characterization("no samples".into())),
    };
    let mut inputs = Vec::with_capacity(samples.len());
    let mut labels = Vec::with_capacity(samples.len());
    for sample in samples {
        if sample.spectrum.axis() != &first_axis {
            return Err(MsSimError::Characterization(
                "samples measured on different axes".into(),
            ));
        }
        inputs.push(sample.spectrum.intensities().to_vec());
        labels.push(sample.mixture.fractions_for(&MS_TASK_SUBSTANCES));
    }
    Ok(LabeledSpectra {
        inputs,
        labels,
        substances: MS_TASK_SUBSTANCES.iter().map(|&s| s.to_string()).collect(),
        axis: first_axis,
    })
}

/// Runs a fresh evaluation campaign: measures each calibration mixture
/// `samples_per_mixture` times and returns the labelled set.
///
/// # Errors
///
/// Propagates measurement errors from the prototype.
pub fn run_evaluation_campaign(
    prototype: &mut MmsPrototype,
    samples_per_mixture: usize,
) -> Result<LabeledSpectra, MsSimError> {
    let samples = run_calibration_campaign(prototype, samples_per_mixture)?;
    to_labeled_spectra(&samples)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fourteen_valid_mixtures() {
        let mixtures = calibration_mixtures();
        assert_eq!(mixtures.len(), 14);
        for m in &mixtures {
            let sum: f64 = m.parts().iter().map(|&(_, f)| f).sum();
            assert!((sum - 1.0).abs() < 1e-9);
            // No purposed water.
            assert_eq!(m.fraction_of("H2O"), 0.0);
        }
    }

    #[test]
    fn mixtures_cover_all_task_gases_except_water() {
        let mixtures = calibration_mixtures();
        for gas in MS_TASK_SUBSTANCES {
            if gas == "H2O" {
                continue;
            }
            assert!(
                mixtures.iter().any(|m| m.fraction_of(gas) > 0.0),
                "{gas} never appears in calibration"
            );
        }
    }

    #[test]
    fn campaign_yields_expected_counts() {
        let mut mms = MmsPrototype::new(1);
        let samples = run_calibration_campaign(&mut mms, 2).unwrap();
        assert_eq!(samples.len(), 28);
    }

    #[test]
    fn labeled_spectra_layout() {
        let mut mms = MmsPrototype::new(2);
        let data = run_evaluation_campaign(&mut mms, 1).unwrap();
        assert_eq!(data.len(), 14);
        assert_eq!(data.substances.len(), 8);
        assert_eq!(data.labels[0].len(), 8);
        // First mixture is pure N2: label at the N2 slot.
        let n2_idx = MS_TASK_SUBSTANCES.iter().position(|&s| s == "N2").unwrap();
        assert_eq!(data.labels[0][n2_idx], 1.0);
    }

    #[test]
    fn empty_sample_set_fails() {
        assert!(to_labeled_spectra(&[]).is_err());
    }
}
