//! The mass-spectrometry toolchain of the paper's first project: a
//! miniaturized in-process mass spectrometer (MMS) evaluated by neural
//! networks trained exclusively on simulated spectra.
//!
//! The paper's Figure 3 toolflow maps onto this crate as follows:
//!
//! | Paper | Module |
//! |---|---|
//! | Tool 1 — ideal line-spectra simulator | [`ideal`] |
//! | Tool 2 — automatic generation of the instrument simulator from measurements | [`characterize`] |
//! | Tool 3 — simulator of the portable mass spectrometer | [`instrument`], [`simulate`] |
//! | the physical MMS prototype (hardware substitute, DESIGN.md §2) | [`prototype`] |
//! | gas-mixing measurement campaigns | [`campaign`] |
//!
//! The crucial design point: [`prototype::MmsPrototype`] hides effects
//! (per-measurement gain fluctuation, humidity-dependent H₂O impurity,
//! O₂ sensitivity drift, mass-calibration jitter) that [`characterize`]
//! does *not* estimate, so networks trained on the estimated simulator
//! exhibit exactly the sim-to-real accuracy gap the paper reports.
//!
//! # Example
//!
//! ```
//! use chem::fragmentation::GasLibrary;
//! use chem::Mixture;
//! use ms_sim::ideal::IdealSpectrumGenerator;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let generator = IdealSpectrumGenerator::new(GasLibrary::standard());
//! let mix = Mixture::from_fractions(vec![("N2".into(), 0.9), ("Ar".into(), 0.1)])?;
//! let line = generator.generate(&mix)?;
//! assert!(line.intensity_at(28.0) > line.intensity_at(40.0));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod characterize;
pub mod ideal;
pub mod instrument;
pub mod prototype;
pub mod simulate;

mod error;

pub use error::MsSimError;
