//! The MMS prototype: the workspace's stand-in for the paper's physical
//! miniaturized mass spectrometer.
//!
//! Substitution rationale (DESIGN.md §2): the paper's central phenomenon
//! is that networks trained on simulated spectra degrade on *measured*
//! spectra ("this behaviour was to be expected due to the prototype status
//! of the measurement equipment and the resulting fluctuations in the
//! quality of the measurement results", §III.A.2). To reproduce that
//! faithfully, this prototype carries hidden effects the characterization
//! tool does not model:
//!
//! * per-measurement global gain fluctuation (detector/pressure drift) —
//!   the mechanism that rewards sum-to-one (softmax) outputs;
//! * a humidity-dependent H₂O impurity ("air humidity caused a signal in
//!   the reference measurement", §III.A.3);
//! * a hidden O₂ sensitivity deficit (the paper's O₂/H₂O confusion);
//! * mass-calibration jitter and slow drift across measurements;
//! * richer noise (shot + drift + spikes) than the estimated white model.

use chem::fragmentation::GasLibrary;
use chem::Mixture;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spectrum::noise::{standard_normal, DriftNoise, GaussianNoise, NoiseModel, ShotNoise, SpikeNoise};
use spectrum::{ContinuousSpectrum, LineSpectrum, UniformAxis};

use crate::instrument::{default_axis, AttenuationLaw, InstrumentModel, PeakWidthLaw};
use crate::MsSimError;

/// Hidden-behaviour configuration of the prototype.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrototypeConfig {
    /// Relative std-dev of the per-measurement global gain.
    pub gain_fluctuation: f64,
    /// Mean effective fraction of ambient H₂O leaking into every sample.
    pub humidity_level: f64,
    /// Std-dev of the humidity level across measurements.
    pub humidity_variation: f64,
    /// Hidden multiplier on the O₂ response (deficit < 1 causes the
    /// paper's O₂ under-read / H₂O confusion).
    pub o2_sensitivity: f64,
    /// Per-measurement mass-calibration jitter (m/z units, 1σ).
    pub mass_jitter: f64,
    /// Slow mass drift per measurement (m/z units).
    pub drift_per_measurement: f64,
}

impl Default for PrototypeConfig {
    fn default() -> Self {
        Self {
            gain_fluctuation: 0.28,
            humidity_level: 0.008,
            humidity_variation: 0.004,
            o2_sensitivity: 0.80,
            mass_jitter: 0.02,
            drift_per_measurement: 1e-5,
        }
    }
}

/// An ideal prototype with every hidden effect disabled — measured data
/// then matches the simulator and the sim-to-real gap vanishes. Useful
/// for ablations.
pub fn ideal_config() -> PrototypeConfig {
    PrototypeConfig {
        gain_fluctuation: 0.0,
        humidity_level: 0.0,
        humidity_variation: 0.0,
        o2_sensitivity: 1.0,
        mass_jitter: 0.0,
        drift_per_measurement: 0.0,
    }
}

/// One measured, labelled sample from the prototype.
#[derive(Debug, Clone, PartialEq)]
pub struct MeasuredSample {
    /// The measured spectrum.
    pub spectrum: ContinuousSpectrum,
    /// The ground-truth mixture that was fed to the instrument.
    pub mixture: Mixture,
}

/// The simulated physical MMS prototype.
///
/// # Example
///
/// ```
/// use chem::Mixture;
/// use ms_sim::prototype::MmsPrototype;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut mms = MmsPrototype::new(42);
/// let air = Mixture::from_fractions(vec![
///     ("N2".into(), 0.78), ("O2".into(), 0.21), ("Ar".into(), 0.01),
/// ])?;
/// let sample = mms.measure(&air)?;
/// assert_eq!(sample.spectrum.len(), mms.axis().len());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MmsPrototype {
    library: GasLibrary,
    instrument: InstrumentModel,
    config: PrototypeConfig,
    axis: UniformAxis,
    rng: ChaCha8Rng,
    measurements_taken: u64,
}

impl MmsPrototype {
    /// A prototype with the default hidden behaviour, seeded for
    /// reproducibility.
    pub fn new(seed: u64) -> Self {
        Self::with_config(seed, PrototypeConfig::default())
    }

    /// A prototype with explicit hidden behaviour.
    pub fn with_config(seed: u64, config: PrototypeConfig) -> Self {
        let instrument = InstrumentModel {
            peak_width: PeakWidthLaw {
                base: 0.45,
                slope: 0.002,
            },
            attenuation: AttenuationLaw {
                amplitude: 1.0,
                rate: -1.0 / 250.0,
            },
            mass_offset: 0.04,
            noise: NoiseModel {
                gaussian: GaussianNoise { sigma: 0.004 },
                shot: ShotNoise { scale: 0.010 },
                drift: DriftNoise {
                    amplitude: 0.004,
                    correlation: 40,
                },
                spikes: SpikeNoise {
                    probability: 5e-4,
                    magnitude: 0.08,
                },
            },
            ignition_gas: Some(("He".into(), 0.25)),
        };
        Self {
            library: GasLibrary::standard(),
            instrument,
            config,
            axis: default_axis(),
            rng: ChaCha8Rng::seed_from_u64(seed),
            measurements_taken: 0,
        }
    }

    /// The measurement axis (m/z 1–100, step 0.25).
    pub fn axis(&self) -> &UniformAxis {
        &self.axis
    }

    /// The hidden configuration (inspection/ablation only — Tool 2 never
    /// sees this).
    pub fn config(&self) -> &PrototypeConfig {
        &self.config
    }

    /// The *true* instrument parameters (inspection only).
    pub fn true_instrument(&self) -> &InstrumentModel {
        &self.instrument
    }

    /// Number of measurements performed so far (drives slow drift).
    pub fn measurements_taken(&self) -> u64 {
        self.measurements_taken
    }

    /// Replaces the hidden-behaviour configuration mid-run — the hook a
    /// drift schedule uses to model environment changes (humidity front,
    /// detector aging) while the measurement RNG stream keeps advancing
    /// deterministically.
    pub fn set_config(&mut self, config: PrototypeConfig) {
        self.config = config;
    }

    /// Replaces the *true* instrument parameters mid-run — the hook a
    /// drift schedule uses to change the spectrum's shape (attenuation
    /// steepening, mass-calibration walk, peak broadening). These are the
    /// parameters [`crate::characterize`] can re-estimate, so drift
    /// injected here is repairable by re-characterization.
    pub fn set_instrument(&mut self, instrument: InstrumentModel) {
        self.instrument = instrument;
    }

    /// Performs one measurement of `mixture`.
    ///
    /// # Errors
    ///
    /// Returns [`MsSimError::Chem`] if a mixture component is not in the
    /// gas library.
    pub fn measure(&mut self, mixture: &Mixture) -> Result<MeasuredSample, MsSimError> {
        // Compose the true sample line spectrum with hidden effects.
        let mut sticks: Vec<(f64, f64)> = Vec::new();
        for (name, fraction) in mixture {
            let pattern = self.library.require(name)?;
            let hidden_gain = if name == "O2" {
                self.config.o2_sensitivity
            } else {
                1.0
            };
            for &(mz, intensity) in pattern.response_spectrum().sticks() {
                sticks.push((mz, intensity * fraction * hidden_gain));
            }
        }
        // Humidity impurity.
        let humidity = (self.config.humidity_level
            + self.config.humidity_variation * standard_normal(&mut self.rng))
        .max(0.0);
        if humidity > 0.0 {
            let water = self.library.require("H2O")?.response_spectrum();
            for &(mz, intensity) in water.sticks() {
                sticks.push((mz, intensity * humidity));
            }
        }
        // Ignition gas.
        if let Some((gas, level)) = self.instrument.ignition_gas.clone() {
            let pattern = self.library.require(&gas)?.response_spectrum();
            for &(mz, intensity) in pattern.sticks() {
                sticks.push((mz, intensity * level));
            }
        }
        let line = LineSpectrum::from_sticks(sticks)?;

        // Mass drift + jitter.
        let extra_offset = self.config.drift_per_measurement * self.measurements_taken as f64
            + self.config.mass_jitter * standard_normal(&mut self.rng);
        let mut spectrum = self.instrument.render(&line, &self.axis, extra_offset);

        // Hidden per-measurement gain fluctuation.
        let gain =
            (1.0 + self.config.gain_fluctuation * standard_normal(&mut self.rng)).max(0.5);
        spectrum.scale(gain);

        // Physical noise.
        self.instrument.noise.apply(&mut spectrum, &mut self.rng);
        spectrum.clamp_non_negative();

        self.measurements_taken += 1;
        Ok(MeasuredSample {
            spectrum,
            mixture: mixture.clone(),
        })
    }

    /// Measures the same mixture `count` times (a measurement series).
    ///
    /// # Errors
    ///
    /// Same conditions as [`MmsPrototype::measure`].
    pub fn measure_series(
        &mut self,
        mixture: &Mixture,
        count: usize,
    ) -> Result<Vec<MeasuredSample>, MsSimError> {
        (0..count).map(|_| self.measure(mixture)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn air() -> Mixture {
        Mixture::from_fractions(vec![
            ("N2".into(), 0.78),
            ("O2".into(), 0.21),
            ("Ar".into(), 0.01),
        ])
        .unwrap()
    }

    #[test]
    fn measurement_is_reproducible_per_seed() {
        let mut a = MmsPrototype::new(7);
        let mut b = MmsPrototype::new(7);
        assert_eq!(a.measure(&air()).unwrap(), b.measure(&air()).unwrap());
    }

    #[test]
    fn repeated_measurements_differ() {
        let mut mms = MmsPrototype::new(7);
        let s1 = mms.measure(&air()).unwrap();
        let s2 = mms.measure(&air()).unwrap();
        assert_ne!(s1.spectrum, s2.spectrum);
        assert_eq!(mms.measurements_taken(), 2);
    }

    #[test]
    fn ignition_gas_peak_is_present() {
        let mut mms = MmsPrototype::new(3);
        // Pure nitrogen has no He line of its own.
        let sample = mms.measure(&Mixture::pure("N2")).unwrap();
        assert!(
            sample.spectrum.sample_at(4.0) > 0.01,
            "He ignition peak missing: {}",
            sample.spectrum.sample_at(4.0)
        );
    }

    #[test]
    fn humidity_adds_water_signal() {
        let config = PrototypeConfig {
            humidity_level: 0.05,
            humidity_variation: 0.0,
            gain_fluctuation: 0.0,
            ..PrototypeConfig::default()
        };
        let mut humid = MmsPrototype::with_config(3, config);
        let mut dry = MmsPrototype::with_config(3, ideal_config());
        let wet_sample = humid.measure(&Mixture::pure("N2")).unwrap();
        let dry_sample = dry.measure(&Mixture::pure("N2")).unwrap();
        assert!(wet_sample.spectrum.sample_at(18.0) > dry_sample.spectrum.sample_at(18.0) + 0.01);
    }

    #[test]
    fn o2_deficit_reduces_oxygen_response() {
        let o2 = Mixture::pure("O2");
        let mut weak = MmsPrototype::with_config(
            5,
            PrototypeConfig {
                o2_sensitivity: 0.5,
                gain_fluctuation: 0.0,
                humidity_level: 0.0,
                humidity_variation: 0.0,
                mass_jitter: 0.0,
                drift_per_measurement: 0.0,
            },
        );
        let mut full = MmsPrototype::with_config(5, ideal_config());
        let weak_peak = weak.measure(&o2).unwrap().spectrum.sample_at(32.0);
        let full_peak = full.measure(&o2).unwrap().spectrum.sample_at(32.0);
        assert!(
            weak_peak < 0.7 * full_peak,
            "weak {weak_peak} vs full {full_peak}"
        );
    }

    #[test]
    fn ideal_config_removes_gain_variance() {
        let mut mms = MmsPrototype::with_config(11, ideal_config());
        let series = mms.measure_series(&air(), 10).unwrap();
        let peaks: Vec<f64> = series
            .iter()
            .map(|s| s.spectrum.sample_at(28.0))
            .collect();
        let mean = peaks.iter().sum::<f64>() / peaks.len() as f64;
        let sd = (peaks.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>()
            / peaks.len() as f64)
            .sqrt();
        // Only detector noise remains: relative sd well below 2 %.
        assert!(sd / mean < 0.02, "relative sd {}", sd / mean);
    }

    #[test]
    fn gain_fluctuation_dominates_peak_variance() {
        let mut mms = MmsPrototype::with_config(
            11,
            PrototypeConfig {
                gain_fluctuation: 0.1,
                ..ideal_config()
            },
        );
        let series = mms.measure_series(&air(), 30).unwrap();
        let peaks: Vec<f64> = series
            .iter()
            .map(|s| s.spectrum.sample_at(28.0))
            .collect();
        let mean = peaks.iter().sum::<f64>() / peaks.len() as f64;
        let sd = (peaks.iter().map(|p| (p - mean) * (p - mean)).sum::<f64>()
            / peaks.len() as f64)
            .sqrt();
        assert!(sd / mean > 0.05, "relative sd {}", sd / mean);
    }

    #[test]
    fn drift_injection_changes_shape_deterministically() {
        let mut stable = MmsPrototype::with_config(21, ideal_config());
        let mut drifted = MmsPrototype::with_config(21, ideal_config());
        // Same RNG stream, same config: identical until the instrument mutates.
        assert_eq!(
            stable.measure(&air()).unwrap(),
            drifted.measure(&air()).unwrap()
        );
        let mut instrument = drifted.true_instrument().clone();
        instrument.attenuation.rate = -1.0 / 60.0;
        instrument.mass_offset += 0.3;
        drifted.set_instrument(instrument);
        let a = stable.measure(&air()).unwrap();
        let b = drifted.measure(&air()).unwrap();
        assert_ne!(a.spectrum, b.spectrum);
        // Steeper attenuation suppresses the high-mass Ar line relative
        // to the stable instrument.
        assert!(b.spectrum.sample_at(40.0) < a.spectrum.sample_at(40.0));
        // And the same mutation on the same seed replays bit-identically.
        let mut replay = MmsPrototype::with_config(21, ideal_config());
        replay.measure(&air()).unwrap();
        let mut instrument = replay.true_instrument().clone();
        instrument.attenuation.rate = -1.0 / 60.0;
        instrument.mass_offset += 0.3;
        replay.set_instrument(instrument);
        assert_eq!(replay.measure(&air()).unwrap(), b);
    }

    #[test]
    fn config_injection_takes_effect_mid_run() {
        let mut mms = MmsPrototype::with_config(9, ideal_config());
        mms.measure(&Mixture::pure("N2")).unwrap();
        mms.set_config(PrototypeConfig {
            humidity_level: 0.08,
            ..ideal_config()
        });
        let humid = mms.measure(&Mixture::pure("N2")).unwrap();
        assert!(humid.spectrum.sample_at(18.0) > 0.01);
        assert_eq!(mms.config().humidity_level, 0.08);
    }

    #[test]
    fn unknown_gas_is_rejected() {
        let mut mms = MmsPrototype::new(1);
        let bad = Mixture::pure("Unobtainium");
        assert!(mms.measure(&bad).is_err());
    }
}
