//! Fault-tolerance drill: exercises the recovery layer end-to-end.
//!
//! Three drills, all driven by one deterministic [`FaultPlan`]:
//!
//! 1. a guarded MS pipeline run with a poisoned training batch and
//!    transient stage failures (rollback + LR backoff + stage retries);
//! 2. a torn datastore write caught by the CRC-32 envelope on reload
//!    and quarantined;
//! 3. an interrupted training run resumed from a persisted checkpoint,
//!    checked bit-identical against an uninterrupted run.

#![forbid(unsafe_code)]

use std::sync::Arc;

use bench::{banner, TraceSession};
use faultsim::FaultPlan;
use ms_sim::prototype::MmsPrototype;
use neural::guard::{Checkpoint, GuardConfig, GuardedTrainer};
use neural::optim::OptimizerSpec;
use neural::spec::{LayerSpec, NetworkSpec};
use neural::train::{Dataset, TrainConfig};
use neural::{Activation, Loss};
use spectroai::datastore::{Metadata, Store};
use spectroai::pipeline::ms::{MsPipeline, MsPipelineConfig};
use spectroai::recovery::{RetryPolicy, StageRunner};

fn main() {
    banner(
        "Fault-tolerance drill — guarded pipeline, torn writes, resume",
        "Fricke et al. 2021, §III.A (robustness hardening)",
    );
    let _trace = TraceSession::from_args();
    guarded_pipeline_drill();
    torn_write_drill();
    resume_drill();
}

/// Drill 1: NaN batch + transient stage failures inside one pipeline run.
fn guarded_pipeline_drill() {
    println!("[1/3] guarded MS pipeline with injected faults");
    let mut config = MsPipelineConfig::quick_test();
    config.epochs = 5;
    let plan = Arc::new(
        FaultPlan::new()
            .with_nan_batch(1, 2)
            .with_stage_failure("calibration", 1)
            .with_stage_failure("simulate", 1),
    );
    let mut runner = StageRunner::new(RetryPolicy::default()).with_fault_plan(Arc::clone(&plan));
    let mut prototype = MmsPrototype::new(5);

    let report = MsPipeline::new(config)
        .expect("valid quick-test config")
        .run_with_recovery(&mut prototype, &mut runner)
        .expect("guarded run completes despite injected faults");

    for attempt in runner.log() {
        println!(
            "      retried stage '{}' (attempt {}): {}",
            attempt.stage, attempt.attempt, attempt.error
        );
    }
    for event in &report.training_recovery {
        println!(
            "      rollback at epoch {} (batch {:?}): {:?} -> resumed from epoch {} at lr {:.2e}",
            event.epoch, event.batch, event.cause, event.rolled_back_to, event.learning_rate
        );
    }
    println!(
        "      done: validation MAE {:.4} | measured MAE {:.4} | {} pending faults",
        report.validation_mae,
        report.measured_mae,
        plan.pending()
    );
}

/// Drill 2: a torn write is quarantined on reload instead of crashing.
fn torn_write_drill() {
    println!("[2/3] torn datastore write -> CRC quarantine");
    let dir = std::env::temp_dir().join(format!("spectroai-fault-drill-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();

    let store = Store::in_memory();
    for run in 0..4 {
        store
            .insert(
                "networks",
                Metadata::created_by("fault-drill").with_param("run", run),
                &serde_json::json!({ "validation_mae": 0.004 + f64::from(run) * 0.001 }),
            )
            .expect("insert document");
    }
    let plan = FaultPlan::new().with_torn_write(2);
    store
        .save_to_dir_with_faults(&dir, &plan)
        .expect("save with injected torn write");

    let report = Store::load_from_dir_report(&dir).expect("reload tolerates the torn file");
    println!(
        "      reloaded {} of 4 documents; quarantined {:?}",
        report.loaded,
        report
            .quarantined
            .iter()
            .map(|q| format!("{} ({})", q.file, q.reason))
            .collect::<Vec<_>>()
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// Drill 3: interrupt, persist, resume — weights must match bit-for-bit.
fn resume_drill() {
    println!("[3/3] checkpoint interrupt/resume determinism");
    let inputs: Vec<Vec<f32>> = (0..96)
        .map(|i| vec![(i % 8) as f32 / 8.0, ((i / 8) % 12) as f32 / 12.0])
        .collect();
    let targets: Vec<Vec<f32>> = inputs.iter().map(|v| vec![v[0] - 0.5 * v[1]]).collect();
    let (train, val) = Dataset::new(inputs, targets)
        .expect("finite dataset")
        .split(0.8)
        .expect("valid split");

    let network = || {
        NetworkSpec::new(2)
            .layer(LayerSpec::Dense {
                units: 6,
                activation: Activation::Selu,
            })
            .layer(LayerSpec::Dense {
                units: 1,
                activation: Activation::Linear,
            })
            .build(7)
            .expect("valid spec")
    };
    let trainer = || {
        GuardedTrainer::new(
            TrainConfig {
                epochs: 8,
                batch_size: 8,
                loss: Loss::Mae,
                optimizer: OptimizerSpec::Adam { lr: 0.005 },
                seed: 11,
                ..TrainConfig::default()
            },
            GuardConfig::default(),
        )
        .expect("valid guard config")
    };

    let mut reference = network();
    trainer()
        .fit(&mut reference, &train, Some(&val))
        .expect("uninterrupted run");

    let mut resumed_net = network();
    let partial = trainer()
        .fit_interrupted(&mut resumed_net, &train, Some(&val), 4)
        .expect("interrupted run");
    let path = std::env::temp_dir().join(format!("fault-drill-ckpt-{}.json", std::process::id()));
    partial.checkpoint.save(&path).expect("persist checkpoint");
    let restored = Checkpoint::load(&path).expect("reload checkpoint");
    std::fs::remove_file(&path).ok();
    trainer()
        .resume(&mut resumed_net, &train, Some(&val), &restored)
        .expect("resumed run");

    let bits = |w: &[Vec<Vec<f32>>]| -> Vec<u32> {
        w.iter().flatten().flatten().map(|x| x.to_bits()).collect()
    };
    let identical = bits(&reference.export_weights()) == bits(&resumed_net.export_weights());
    println!(
        "      interrupted at epoch {} of 8, resumed from disk: weights bit-identical = {}",
        restored.epochs_done, identical
    );
    if !identical {
        std::process::exit(1);
    }
}
