//! Table 1: the structure of the ANN used for mass-spectrum analysis.
//!
//! Regenerates the layer table (type, filters, kernel, stride,
//! activation) with the concrete output shapes and parameter counts our
//! implementation produces on the paper's 397-point input.

#![forbid(unsafe_code)]

use bench::{banner, TraceSession};
use ms_sim::campaign::MS_TASK_SUBSTANCES;
use ms_sim::instrument::default_axis;
use spectroai::pipeline::ms::{ActivationChoice, MsPipeline};

fn main() {
    banner("Table 1 — MS network topology", "Fricke et al. 2021, Table 1");
    let _trace = TraceSession::from_args();
    let axis = default_axis();
    println!(
        "input: measured spectrum, m/z {}..{} step {} -> {} points\n",
        axis.start(),
        axis.stop(),
        axis.step(),
        axis.len()
    );
    let spec = MsPipeline::table1_spec(
        axis.len(),
        MS_TASK_SUBSTANCES.len(),
        ActivationChoice::paper_best(),
    );
    let network = spec.build(0).expect("table 1 network builds");
    print!("{}", network.summary_table());
    println!(
        "\npaper layer stack: Input/Reshape; Conv1D(25,k20,s1,SELU); Conv1D(25,k20,s3,SELU);"
    );
    println!("Conv1D(25,k15,s2,SELU); Conv1D(15,k15,s4,Softmax); Flatten; Dense(Softmax)");
    println!(
        "\nexpected spatial shapes on 397 inputs: 378 / 120 / 53 / 10 -> flatten 150 -> {} outputs",
        MS_TASK_SUBSTANCES.len()
    );
}
