//! Ablation studies around the NMR design choices the paper discusses:
//!
//! * **A1 — training-epoch sweep.** "Training this neural network, we
//!   found that after 50 epochs the performance on the experimental
//!   validation dataset is best. However, we continued training for 400
//!   epochs, despite the risk of overfitting to synthetic data"
//!   (§III.B.2). We sweep epochs and report experimental MSE at the
//!   *final* epoch (no best-epoch restoration) to expose the
//!   overfit-to-synthetic effect, alongside the best-epoch score.
//! * **A2 — augmentation-size sweep.** The augmentation method's value
//!   proposition: how does CNN accuracy scale with the number of
//!   synthetic training spectra?

#![forbid(unsafe_code)]

use bench::{TraceSession, banner, pick, write_csv};
use spectroai::pipeline::nmr::{NmrPipeline, NmrPipelineConfig};

fn main() {
    banner("NMR ablations — epochs and augmentation size", "Fricke et al. 2021, §III.B");
    let _trace = TraceSession::from_args();

    // A1: epoch sweep at fixed augmentation size.
    let epoch_grid: Vec<usize> = if bench::full_scale() {
        vec![10, 25, 50, 100, 200]
    } else {
        vec![4, 10, 20, 40]
    };
    let augmented = pick(2_000, 30_000);
    println!("\n[A1] epoch sweep at {augmented} synthetic spectra");
    println!(
        "{:>8} {:>16} {:>16} {:>12}",
        "epochs", "final-epoch MSE", "best-epoch MSE", "best epoch"
    );
    let mut rows = Vec::new();
    for &epochs in &epoch_grid {
        let config = NmrPipelineConfig {
            augmented_spectra: augmented,
            cnn_epochs: epochs,
            lstm_epochs: 1,
            lstm_windows: 10,
            run_ihm: false,
            ..NmrPipelineConfig::default()
        };
        // Run once with best-epoch restoration (the pipeline default)...
        let best = NmrPipeline::new(config.clone())
            .expect("config")
            .run()
            .expect("pipeline");
        // ...and read the final-epoch validation MSE from the history.
        let final_epoch_mse = *best
            .cnn_history
            .val_loss
            .last()
            .expect("validation tracked") as f64;
        println!(
            "{epochs:>8} {final_epoch_mse:>16.6} {:>16.6} {:>12}",
            best.cnn.mse,
            best.cnn_history
                .best_epoch
                .map_or("-".to_string(), |e| e.to_string())
        );
        rows.push(format!(
            "{epochs},{final_epoch_mse:.8},{:.8},{}",
            best.cnn.mse,
            best.cnn_history.best_epoch.unwrap_or(0)
        ));
    }
    let p1 = write_csv(
        "nmr_ablation_epochs.csv",
        "epochs,final_epoch_mse,best_epoch_mse,best_epoch",
        &rows,
    );

    // A2: augmentation-size sweep at fixed epochs.
    let size_grid: Vec<usize> = if bench::full_scale() {
        vec![300, 1_000, 3_000, 10_000, 30_000]
    } else {
        vec![150, 500, 1_500, 4_000]
    };
    let epochs = pick(12, 50);
    println!("\n[A2] augmentation-size sweep at {epochs} epochs");
    println!("{:>10} {:>16}", "spectra", "CNN MSE");
    let mut rows = Vec::new();
    for &size in &size_grid {
        let config = NmrPipelineConfig {
            augmented_spectra: size,
            cnn_epochs: epochs,
            lstm_epochs: 1,
            lstm_windows: 10,
            run_ihm: false,
            ..NmrPipelineConfig::default()
        };
        let report = NmrPipeline::new(config)
            .expect("config")
            .run()
            .expect("pipeline");
        println!("{size:>10} {:>16.6}", report.cnn.mse);
        rows.push(format!("{size},{:.8}", report.cnn.mse));
    }
    let p2 = write_csv("nmr_ablation_augmentation.csv", "spectra,cnn_mse", &rows);

    println!("\nseries written to {} and {}", p1.display(), p2.display());
    println!("expected shapes: A1 — experimental MSE saturates (and can worsen) with epochs;");
    println!("A2 — MSE falls steeply with augmentation size, then saturates.");
}
