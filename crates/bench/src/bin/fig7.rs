//! Figure 7: per-compound error of the final MMS network when
//! identifying the compounds in a simulated (gray) and a real (black)
//! sample.
//!
//! Paper findings to reproduce (§III.A.3):
//! * the final network (Table 1, SELU + softmax, simulator parameterized
//!   with ~200 samples/mixture) reaches ~0.27 % MAE on simulated
//!   validation data and ~1.5 % on measured data;
//! * most compounds stay below 3 % measured error;
//! * O₂ shows the largest deviation (>5 % in the paper) and H₂O is
//!   detected although no water was purposely dosed — air humidity and a
//!   hidden O₂ sensitivity deficit push probability mass from O₂ to H₂O.

#![forbid(unsafe_code)]

use bench::{TraceSession, banner, pct, pick, write_csv};
use ms_sim::prototype::MmsPrototype;
use spectroai::pipeline::ms::{ActivationChoice, MsPipeline, MsPipelineConfig};

fn main() {
    banner("Figure 7 — final network, per-compound errors", "Fricke et al. 2021, Fig. 7");
    let _trace = TraceSession::from_args();
    let config = MsPipelineConfig {
        activations: ActivationChoice::paper_best(),
        calibration_samples_per_mixture: pick(50, 200),
        training_spectra: pick(3_000, 20_000),
        epochs: pick(18, 30),
        evaluation_samples_per_mixture: pick(10, 20),
        learning_rate: 2e-3,
        batch_size: 16,
        target_validation_mae: Some(pick(0.008, 0.005)),
        ..MsPipelineConfig::default()
    };
    println!(
        "pipeline: {} samples/mixture, {} training spectra, {} epochs\n",
        config.calibration_samples_per_mixture, config.training_spectra, config.epochs
    );
    let mut prototype = MmsPrototype::new(42);
    let report = MsPipeline::new(config)
        .expect("config")
        .run(&mut prototype)
        .expect("pipeline");

    println!("validation loss per epoch: {:?}\n", report.history.val_loss);
    println!(
        "{:<6} {:>16} {:>14}",
        "gas", "simulated MAE", "measured MAE"
    );
    let mut rows = Vec::new();
    for ((name, sim), meas) in report
        .substances
        .iter()
        .zip(&report.per_substance_validation)
        .zip(&report.per_substance_measured)
    {
        println!("{name:<6} {:>16} {:>14}", pct(*sim), pct(*meas));
        rows.push(format!("{name},{sim:.6},{meas:.6}"));
    }
    println!(
        "\nmean: simulated {} | measured {}",
        pct(report.validation_mae),
        pct(report.measured_mae)
    );

    // The paper's two anomalies.
    let idx = |gas: &str| {
        report
            .substances
            .iter()
            .position(|s| s == gas)
            .expect("task gas")
    };
    let o2 = report.per_substance_measured[idx("O2")];
    let h2o = report.per_substance_measured[idx("H2O")];
    let others: Vec<f64> = report
        .substances
        .iter()
        .zip(&report.per_substance_measured)
        .filter(|(name, _)| *name != "O2" && *name != "H2O")
        .map(|(_, &v)| v)
        .collect();
    let other_mean = others.iter().sum::<f64>() / others.len() as f64;
    println!("\nanomaly check (paper: O2 > 5%, H2O falsely detected):");
    println!(
        "  O2 measured MAE {} vs other-gas mean {}",
        pct(o2),
        pct(other_mean)
    );
    println!(
        "  H2O measured MAE {} although no mixture contains water",
        pct(h2o)
    );

    let path = write_csv("fig7_per_compound.csv", "gas,simulated_mae,measured_mae", &rows);
    println!("\nseries written to {}", path.display());
    println!("paper shape: 0.27% simulated vs 1.5% measured; most gases < 3%; O2 worst.");
}
