//! Figure 5: mean absolute error on *measured* data for eight ANN
//! variants differing in activation functions — {ReLU, SELU} hidden ×
//! {softmax, linear} on the final conv layer × {softmax, linear} on the
//! output layer.
//!
//! Paper findings to reproduce (§III.A.2):
//! * on simulated validation data all variants are close (MAE ≪ 1 %);
//! * on measured data the softmax/softmax variants win decisively
//!   (paper: 1.50 % SELU, 1.61 % ReLU vs 3.05–5.14 % for the rest);
//! * SELU adds a small extra improvement over ReLU for the best nets.

#![forbid(unsafe_code)]

use bench::{TraceSession, banner, pct, pick, write_csv};
use chem::fragmentation::GasLibrary;
use ms_sim::campaign::{run_calibration_campaign, run_evaluation_campaign, MS_TASK_SUBSTANCES};
use ms_sim::characterize::Characterizer;
use ms_sim::instrument::default_axis;
use ms_sim::prototype::MmsPrototype;
use ms_sim::simulate::TrainingSimulator;
use neural::optim::OptimizerSpec;
use neural::train::{Dataset, TrainConfig, Trainer};
use neural::Loss;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spectroai::pipeline::ms::{evaluate_on, ActivationChoice, MsPipeline};

fn main() {
    banner("Figure 5 — activation-function study", "Fricke et al. 2021, Fig. 5");
    let _trace = TraceSession::from_args();
    let calibration_samples = pick(25, 200);
    let training_spectra = pick(3_000, 12_000);
    // Paper methodology: each variant trains until it meets the
    // validation target ("a mean error of no more than 0.005 on the
    // validation data"), bounded by an epoch cap. Softmax heads need
    // more epochs than linear ones to get there.
    let epochs = pick(16, 30);
    let val_target = pick(0.009f32, 0.005f32);
    let eval_samples = pick(10, 20);
    let seed = 42u64;

    // Shared toolchain front end: one campaign, one characterization,
    // one simulated dataset — the eight networks differ only in their
    // activation functions, exactly as in the paper.
    let mut prototype = MmsPrototype::new(seed);
    let axis = default_axis();
    println!("[1/4] calibration campaign: 14 mixtures x {calibration_samples} samples");
    let calibration = run_calibration_campaign(&mut prototype, calibration_samples)
        .expect("calibration campaign");
    println!("[2/4] characterizing instrument (Tool 2)");
    let characterization = Characterizer::new(GasLibrary::standard(), Some("He".into()))
        .characterize(&calibration)
        .expect("characterization");
    println!(
        "      width law: fwhm = {:.3} + {:.5}*mz | attenuation rate {:.5} | offset {:.3}",
        characterization.model.peak_width.base,
        characterization.model.peak_width.slope,
        characterization.model.attenuation.rate,
        characterization.model.mass_offset,
    );
    println!("[3/4] generating {training_spectra} simulated training spectra (Tools 1+3)");
    let simulator = TrainingSimulator::new(
        characterization.model.clone(),
        GasLibrary::standard(),
        MS_TASK_SUBSTANCES.iter().map(|&s| s.to_string()).collect(),
        axis,
    )
    .expect("simulator");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let simulated = simulator
        .generate_dataset(training_spectra, &mut rng)
        .expect("training data");
    let dataset = Dataset::new(simulated.inputs_f32(), simulated.labels_f32()).expect("dataset");
    let (train, validation) = dataset.split(0.8).expect("split");

    // One shared measured evaluation campaign.
    let measured =
        run_evaluation_campaign(&mut prototype, eval_samples).expect("evaluation campaign");

    println!("[4/4] training 8 activation variants x {epochs} epochs\n");
    println!(
        "{:<16} {:>10} {:>10}   per-substance measured MAE",
        "variant", "sim MAE", "meas MAE"
    );
    let mut rows = Vec::new();
    // SPECTROAI_FIG5_SUBSET=1 trains only the two extreme variants for
    // fast iteration on the toolchain itself.
    let subset = std::env::var("SPECTROAI_FIG5_SUBSET").is_ok_and(|v| v == "1");
    let grid: Vec<ActivationChoice> = if subset {
        vec![ActivationChoice::paper_best(), ActivationChoice::paper_initial()]
    } else {
        ActivationChoice::figure5_grid()
    };
    for activations in grid {
        let spec = MsPipeline::table1_spec(axis.len(), MS_TASK_SUBSTANCES.len(), activations);
        let mut network = spec.build(seed).expect("network");
        let config = TrainConfig {
            epochs,
            batch_size: 16,
            optimizer: OptimizerSpec::Adam { lr: 2e-3 },
            loss: Loss::Mae,
            shuffle: true,
            seed,
            restore_best: true,
            stop_at_val_loss: Some(val_target),
        };
        Trainer::new(config)
            .fit(&mut network, &train, Some(&validation))
            .expect("training");
        let sim_per = validation.per_output_mae(&mut network);
        let sim_mae = sim_per.iter().sum::<f64>() / sim_per.len() as f64;
        let (meas_mae, meas_per) = evaluate_on(&mut network, &measured).expect("evaluation");
        let per: Vec<String> = meas_per.iter().map(|&v| pct(v)).collect();
        println!(
            "{:<16} {:>10} {:>10}   [{}]",
            activations.label(),
            pct(sim_mae),
            pct(meas_mae),
            per.join(", ")
        );
        rows.push(format!(
            "{},{:.6},{:.6},{}",
            activations.label(),
            sim_mae,
            meas_mae,
            meas_per
                .iter()
                .map(|v| format!("{v:.6}"))
                .collect::<Vec<_>>()
                .join(",")
        ));
    }
    let path = write_csv(
        "fig5_activations.csv",
        &format!(
            "variant,sim_mae,measured_mae,{}",
            MS_TASK_SUBSTANCES.join(",")
        ),
        &rows,
    );
    println!("\nseries written to {}", path.display());
    println!(
        "paper shape: sftm/sftm variants ~1.5-1.6% measured MAE; all others 3.05-5.14%."
    );
}
