//! The paper's preliminary architecture study (§III.A.2): "a broad set
//! of ANN topologies ... included Multi-Layer Perceptron (MLP) networks,
//! the ResNet and Highway network architectures, and Convolutional
//! Neural Networks (CNN). The preliminary investigations showed that
//! CNNs represent a good compromise between performance and effort in
//! training and inference."
//!
//! This harness reruns that comparison on the MS task: equal training
//! budget, then accuracy vs parameter count vs inference cost.

#![forbid(unsafe_code)]

use std::time::Instant;

use bench::{TraceSession, banner, pct, pick, write_csv};
use chem::fragmentation::GasLibrary;
use ms_sim::campaign::{run_calibration_campaign, MS_TASK_SUBSTANCES};
use ms_sim::characterize::Characterizer;
use ms_sim::instrument::default_axis;
use ms_sim::prototype::MmsPrototype;
use ms_sim::simulate::TrainingSimulator;
use neural::optim::OptimizerSpec;
use neural::spec::{LayerSpec, NetworkSpec};
use neural::train::{Dataset, TrainConfig, Trainer};
use neural::{Activation, Loss};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spectroai::pipeline::ms::{ActivationChoice, MsPipeline};

fn candidates(input_len: usize, outputs: usize) -> Vec<(&'static str, NetworkSpec)> {
    vec![
        (
            "MLP",
            NetworkSpec::new(input_len)
                .layer(LayerSpec::Dense {
                    units: 64,
                    activation: Activation::Selu,
                })
                .layer(LayerSpec::Dense {
                    units: 32,
                    activation: Activation::Selu,
                })
                .layer(LayerSpec::Dense {
                    units: outputs,
                    activation: Activation::Softmax,
                }),
        ),
        (
            "Highway",
            NetworkSpec::new(input_len)
                .layer(LayerSpec::Dense {
                    units: 64,
                    activation: Activation::Selu,
                })
                .layer(LayerSpec::Highway {
                    activation: Activation::Selu,
                })
                .layer(LayerSpec::Highway {
                    activation: Activation::Selu,
                })
                .layer(LayerSpec::Dense {
                    units: outputs,
                    activation: Activation::Softmax,
                }),
        ),
        (
            "ResNet",
            NetworkSpec::new(input_len)
                .layer(LayerSpec::Dense {
                    units: 64,
                    activation: Activation::Selu,
                })
                .layer(LayerSpec::ResidualDense {
                    activation: Activation::Selu,
                })
                .layer(LayerSpec::ResidualDense {
                    activation: Activation::Selu,
                })
                .layer(LayerSpec::Dense {
                    units: outputs,
                    activation: Activation::Softmax,
                }),
        ),
        (
            "CNN",
            MsPipeline::table1_spec(input_len, outputs, ActivationChoice::paper_best()),
        ),
    ]
}

fn main() {
    banner(
        "Architecture exploration — MLP vs Highway vs ResNet vs CNN",
        "Fricke et al. 2021, §III.A.2 preliminary study",
    );
    let _trace = TraceSession::from_args();
    let training_spectra = pick(2_000, 12_000);
    let epochs = pick(8, 16);
    let seed = 42u64;
    let axis = default_axis();

    // Shared simulated dataset (validation on held-out simulated data —
    // this is the *preliminary* study, before measured data existed).
    let mut prototype = MmsPrototype::new(seed);
    let calibration = run_calibration_campaign(&mut prototype, pick(25, 100))
        .expect("calibration campaign");
    let characterization = Characterizer::new(GasLibrary::standard(), Some("He".into()))
        .characterize(&calibration)
        .expect("characterization");
    let simulator = TrainingSimulator::new(
        characterization.model,
        GasLibrary::standard(),
        MS_TASK_SUBSTANCES.iter().map(|&s| s.to_string()).collect(),
        axis,
    )
    .expect("simulator");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let simulated = simulator
        .generate_dataset(training_spectra, &mut rng)
        .expect("training data");
    let dataset = Dataset::new(simulated.inputs_f32(), simulated.labels_f32()).expect("dataset");
    let (train, validation) = dataset.split(0.8).expect("split");

    println!(
        "{:<10} {:>10} {:>10} {:>12} {:>14}",
        "arch", "params", "sim MAE", "train s", "us/inference"
    );
    let mut rows = Vec::new();
    for (name, spec) in candidates(axis.len(), MS_TASK_SUBSTANCES.len()) {
        let mut network = spec.build(seed).expect("network");
        let config = TrainConfig {
            epochs,
            batch_size: 16,
            optimizer: OptimizerSpec::Adam { lr: 2e-3 },
            loss: Loss::Mae,
            shuffle: true,
            seed,
            restore_best: true,
            stop_at_val_loss: None,
        };
        let start = Instant::now();
        Trainer::new(config)
            .fit(&mut network, &train, Some(&validation))
            .expect("training");
        let train_seconds = start.elapsed().as_secs_f64();
        let per = validation.per_output_mae(&mut network);
        let sim_mae = per.iter().sum::<f64>() / per.len() as f64;
        // Inference timing.
        let probe = &train.inputs()[0];
        let start = Instant::now();
        let reps = 200;
        for _ in 0..reps {
            std::hint::black_box(network.predict(std::hint::black_box(probe)));
        }
        let us_per = start.elapsed().as_secs_f64() * 1e6 / reps as f64;
        println!(
            "{name:<10} {:>10} {:>10} {:>12.1} {:>14.1}",
            network.param_count(),
            pct(sim_mae),
            train_seconds,
            us_per
        );
        rows.push(format!(
            "{name},{},{sim_mae:.6},{train_seconds:.2},{us_per:.2}",
            network.param_count()
        ));
    }
    let path = write_csv(
        "arch_explore.csv",
        "architecture,parameters,sim_mae,train_seconds,us_per_inference",
        &rows,
    );
    println!("\nseries written to {}", path.display());
    println!(
        "paper conclusion to reproduce: the CNN is the best accuracy/effort \
         compromise (dense families need far more parameters for comparable error)."
    );
}
