//! §III.A.2 prose experiment: the initial network version with linear
//! activation functions in layers 6 and 8.
//!
//! Paper numbers to reproduce in shape: "The initial version, which used
//! linear activation functions for layer 6 and 8 has a mean absolute
//! error of 0.14% on the validation dataset. ... the MAE for the above-
//! mentioned network, using the linear activation function in the output
//! layer increased to 3.15%" on real measurement series — i.e. a
//! sim-to-real degradation of more than an order of magnitude.

#![forbid(unsafe_code)]

use bench::{TraceSession, banner, pct, pick};
use ms_sim::prototype::MmsPrototype;
use spectroai::pipeline::ms::{ActivationChoice, MsPipeline, MsPipelineConfig};

fn main() {
    banner(
        "MS baseline — initial linear-output network",
        "Fricke et al. 2021, §III.A.2 prose",
    );
    let _trace = TraceSession::from_args();
    let config = MsPipelineConfig {
        activations: ActivationChoice::paper_initial(),
        calibration_samples_per_mixture: pick(25, 200),
        training_spectra: pick(3_000, 12_000),
        epochs: pick(16, 30),
        evaluation_samples_per_mixture: pick(10, 20),
        learning_rate: 2e-3,
        batch_size: 16,
        target_validation_mae: Some(pick(0.008, 0.005)),
        ..MsPipelineConfig::default()
    };
    let mut prototype = MmsPrototype::new(42);
    let report = MsPipeline::new(config)
        .expect("config")
        .run(&mut prototype)
        .expect("pipeline");

    println!("\nnetwork: Table 1 stack with linear activations on layers 6 and 8");
    println!("  simulated validation MAE : {}", pct(report.validation_mae));
    println!("  measured MAE             : {}", pct(report.measured_mae));
    println!(
        "  degradation factor       : {:.1}x",
        report.measured_mae / report.validation_mae.max(1e-9)
    );
    println!("\nper-substance measured MAE:");
    for (name, mae) in report.substances.iter().zip(&report.per_substance_measured) {
        println!("  {name:<6} {}", pct(*mae));
    }
    println!("\npaper shape: 0.14% simulated -> 3.15% measured (>20x degradation).");
}
