//! §III.B.3 experiments: the NMR model comparison — IHM vs the paper's
//! 10 532-parameter locally connected CNN vs the 221 956-parameter LSTM.
//!
//! Paper findings to reproduce in shape:
//! * the CNN beats IHM on accuracy ("a 5 % lower mean square error");
//! * the CNN is *much* faster than IHM ("more than 1000 times faster",
//!   0.9 ms vs ~1 s per spectrum — our Rust inference is faster still);
//! * the LSTM is less accurate ("a mean square error that is roughly
//!   twice as large" as IHM) but *steadier* on plateaus ("a 20 % reduced
//!   standard deviation") with a prediction time around the CNN's
//!   (paper: 1.05 ms).

#![forbid(unsafe_code)]

use bench::{TraceSession, banner, pick, write_csv};
use spectroai::pipeline::nmr::{ModelScore, NmrPipeline, NmrPipelineConfig};

fn main() {
    banner("NMR evaluation — IHM vs CNN vs LSTM", "Fricke et al. 2021, §III.B.3");
    let _trace = TraceSession::from_args();
    let config = NmrPipelineConfig {
        augmented_spectra: pick(4_000, 30_000),
        cnn_epochs: pick(25, 50),
        lstm_epochs: pick(6, 30),
        lstm_windows: pick(1_000, 6_000),
        ihm_max_spectra: Some(pick(40, 300)),
        ..NmrPipelineConfig::default()
    };
    println!(
        "pipeline: {} synthetic spectra, CNN {} epochs, LSTM {} epochs x {} windows, IHM on {} spectra\n",
        config.augmented_spectra,
        config.cnn_epochs,
        config.lstm_epochs,
        config.lstm_windows,
        config.ihm_max_spectra.unwrap_or(300),
    );
    let report = NmrPipeline::new(config)
        .expect("config")
        .run()
        .expect("pipeline");

    let ihm = report.ihm.expect("IHM enabled");
    let print_row = |name: &str, score: &ModelScore| {
        println!(
            "{name:<6} {:>12.6} {:>10.2} {:>14.6} {:>14.3} {:>10}",
            score.mse,
            score.mse / ihm.mse,
            score.plateau_std,
            score.seconds_per_spectrum * 1e3,
            score.parameters
        );
    };
    println!(
        "{:<6} {:>12} {:>10} {:>14} {:>14} {:>10}",
        "method", "MSE", "vs IHM", "plateau std", "ms/spectrum", "params"
    );
    print_row("IHM", &ihm);
    print_row("CNN", &report.cnn);
    print_row("LSTM", &report.lstm);

    println!("\nderived claims (paper in brackets):");
    println!(
        "  CNN accuracy vs IHM : {:+.1}% MSE   [-5%]",
        (report.cnn.mse / ihm.mse - 1.0) * 100.0
    );
    println!(
        "  CNN speed vs IHM    : {:.0}x faster   [>1000x]",
        ihm.seconds_per_spectrum / report.cnn.seconds_per_spectrum
    );
    println!(
        "  LSTM MSE vs IHM     : {:.2}x   [~2x]",
        report.lstm.mse / ihm.mse
    );
    println!(
        "  LSTM plateau std vs CNN : {:+.1}%   [-20%]",
        (report.lstm.plateau_std / report.cnn.plateau_std - 1.0) * 100.0
    );
    println!(
        "  parameter counts    : CNN {} [10532], LSTM {} [221956]",
        report.cnn.parameters, report.lstm.parameters
    );

    let rows = vec![
        format!(
            "IHM,{:.8},{:.8},{:.8},0",
            ihm.mse, ihm.plateau_std, ihm.seconds_per_spectrum
        ),
        format!(
            "CNN,{:.8},{:.8},{:.8},{}",
            report.cnn.mse,
            report.cnn.plateau_std,
            report.cnn.seconds_per_spectrum,
            report.cnn.parameters
        ),
        format!(
            "LSTM,{:.8},{:.8},{:.8},{}",
            report.lstm.mse,
            report.lstm.plateau_std,
            report.lstm.seconds_per_spectrum,
            report.lstm.parameters
        ),
    ];
    let path = write_csv(
        "nmr_eval.csv",
        "method,mse,plateau_std,seconds_per_spectrum,parameters",
        &rows,
    );
    println!("\nseries written to {}", path.display());
}
