//! Load-drives the `serve` inference engine with the Table-1 MS network.
//!
//! Deploys a trained-shape network through the core deploy stage into a
//! datastore, loads it into a `serve::ModelRegistry`, then fires a
//! synthetic request stream at the engine. Verifies every served output
//! is bit-identical to sequential `Network::predict`, compares batched
//! multi-worker throughput against the single-thread sequential baseline
//! and against the analytical platform model, and writes the numbers to
//! `BENCH_serve.json` (+ a CSV series in `target/experiments/`).
//!
//! `--smoke` runs a small request count for CI and skips the speedup
//! assertion (shared runners have unpredictable scheduling); the default
//! and `SPECTROAI_FULL=1` scales assert that the engine beats the
//! sequential baseline.
//!
//! `--shards N` serves through the sharded `serve::Router` (supervisor,
//! admission control, failover) instead of one bare engine; `--chaos`
//! additionally injects a worker panic and a batch stall mid-run via
//! `faultsim` and asserts the tier loses no request: the supervisor
//! fails the shard over, restarts it, and every submission reaches a
//! terminal outcome (conservation). The JSON gains the per-shard and
//! failover counters.
//!
//! `--arrival <poisson|bursty|diurnal>` switches the driver from the
//! closed loop (front-load everything, then wait) to an *open-loop*
//! arrival process (`bench::arrival`): requests are submitted on a
//! seeded schedule independent of completions, so backpressure and
//! admission control face a workload that does not politely slow down.
//! Shed submissions (queue-full / admission rejections) are counted, and
//! the conservation check becomes offered = served + shed.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::arrival::ArrivalProcess;
use bench::{banner, pick, write_csv, TraceSession};
use datastore::Store;
use faultsim::FaultPlan;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serve::{
    Engine, ModelRegistry, Request, RetryPolicy, Router, RouterConfig, ServeConfig, SubmitError,
    SupervisorConfig, Ticket,
};
use spectroai::pipeline::deploy::deploy_network;
use spectroai::pipeline::ms::{ActivationChoice, MsPipeline};

const INPUT_LEN: usize = 397;
const OUTPUTS: usize = 8;

/// `--shards N` from argv, if present.
fn shards_arg() -> Option<usize> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--shards")
        .and_then(|i| args.get(i + 1))
        .and_then(|n| n.parse().ok())
}

/// `--arrival <kind>` from argv, if present.
fn arrival_arg() -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == "--arrival")
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Builds the requested open-loop process at a rate the serving tier can
/// sustain (anchored to the measured sequential baseline, so quick and
/// full scales both finish promptly).
fn arrival_process(kind: &str, sequential_rps: f64, n_requests: usize) -> ArrivalProcess {
    let base = (sequential_rps * 0.6).max(500.0);
    match kind {
        "poisson" => ArrivalProcess::poisson(97, base),
        "bursty" => ArrivalProcess::bursty(97, base * 0.4, 6.0, 40.0, 80.0),
        "diurnal" => {
            // Two full cycles across the run's nominal span.
            let span_us = n_requests as f64 / base * 1e6;
            ArrivalProcess::diurnal(97, base * 0.4, 4.0, (span_us / 2.0).max(10_000.0))
        }
        other => {
            eprintln!("unknown --arrival kind {other:?}; expected poisson|bursty|diurnal");
            std::process::exit(2);
        }
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let chaos = std::env::args().any(|a| a == "--chaos");
    let arrival = arrival_arg();
    let shards = shards_arg().or(if chaos { Some(4) } else { None });
    banner(
        "serve_load — batched inference serving on the Table-1 MS network",
        "paper §III.A.2 Table 1 (deployed via Tool 4)",
    );

    let n_requests: usize = if smoke { 200 } else { pick(2_000, 20_000) };
    let config = ServeConfig {
        workers: 4,
        queue_capacity: 1024,
        max_batch: 32,
        max_linger: std::time::Duration::from_micros(200),
        // The driver front-loads the whole stream before waiting, so
        // queue residency is measured in seconds, not the serving
        // default's interactive budget.
        default_deadline: std::time::Duration::from_secs(120),
    };

    // Tool-4 hand-off: deploy the network into a datastore, then load the
    // registry from it — the exact path a serving node would take.
    let spec = MsPipeline::table1_spec(INPUT_LEN, OUTPUTS, ActivationChoice::paper_best());
    let mut network = spec.build(42).expect("build table-1 network");
    let store = Store::in_memory();
    let receipt = deploy_network(&store, "deployed_models", "table1-ms", spec, &network, [])
        .expect("deploy table-1 network");
    println!(
        "deployed {} v{} ({} parameters) as {}",
        receipt.name, receipt.version, receipt.parameter_count, receipt.document
    );
    let registry = Arc::new(ModelRegistry::new());
    let loaded = registry
        .load_from_store(&store, "deployed_models")
        .expect("load registry from store");
    assert_eq!(loaded, 1, "registry should load exactly the deployed model");

    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let inputs: Vec<Vec<f32>> = (0..n_requests)
        .map(|_| (0..INPUT_LEN).map(|_| rng.gen_range(0.0f32..1.0)).collect())
        .collect();

    // Single-thread sequential baseline — also the bit-identity oracle.
    let started = Instant::now();
    let expected: Vec<Vec<f32>> = inputs.iter().map(|x| network.predict(x)).collect();
    let sequential_seconds = started.elapsed().as_secs_f64();
    let sequential_rps = n_requests as f64 / sequential_seconds;
    println!(
        "sequential: {n_requests} predictions in {sequential_seconds:.3}s ({sequential_rps:.0} req/s)"
    );

    // Trace-overhead gate: with no collector installed, a span-wrapped
    // predict must stay within 5% of the bare call — the disabled fast
    // path is one relaxed atomic load. Runs before any `--trace`
    // collector is installed.
    overhead_gate(&mut network, &inputs);

    // `--trace <out.json>`: collect a chrome-trace profile of the serving
    // run (spans + queue-depth gauge from the engine's obs hooks).
    let trace = TraceSession::from_args();

    // Batched multi-worker serving of the same stream — one bare engine
    // by default, the supervised sharded tier with `--shards`.
    let retry = RetryPolicy {
        max_attempts: 64,
        base_delay_ms: 1,
        backoff: 1.5,
    };
    let process = arrival
        .as_deref()
        .map(|kind| arrival_process(kind, sequential_rps, n_requests));
    if let Some(kind) = &arrival {
        println!("arrival:    open-loop {kind} process (seeded, rate anchored to baseline)");
    }
    let outcome = match shards {
        Some(n) => serve_sharded(&registry, &inputs, &expected, &config, n, chaos, retry, process),
        None => serve_single(&registry, &inputs, &expected, &config, retry, process),
    };
    if let Some(trace_path) = trace.finish() {
        validate_trace(&trace_path);
    }
    let served_seconds = outcome.served_seconds;
    let served_rps = n_requests as f64 / served_seconds;
    let report = outcome.report;

    assert_eq!(
        outcome.mismatches, 0,
        "batched serving must be bit-identical to sequential Network::predict"
    );
    let speedup = served_rps / sequential_rps;
    println!(
        "served:     {n_requests} predictions in {served_seconds:.3}s ({served_rps:.0} req/s, \
         {:.2}x sequential)",
        speedup
    );
    println!(
        "batching:   {} batches, mean size {:.2}, largest {}, queue high-water {}",
        report.batches, report.mean_batch_size, outcome.max_batch_seen, report.queue_depth_high_water
    );
    println!(
        "latency:    mean {:.0}us  p50<={}us  p95<={}us  p99<={}us  max {}us",
        report.latency_mean_us,
        report.latency_p50_us,
        report.latency_p95_us,
        report.latency_p99_us,
        report.latency_max_us
    );
    if let Some(router) = &outcome.router {
        println!(
            "tier:       {} shards, {} failovers, {} restarts, {} re-routed, {} shed, {} crash-resolved",
            router.shards.len(),
            router.failovers,
            router.restarts,
            router.rerouted,
            router.shed,
            outcome.crashed,
        );
    }
    if let Some(kind) = &arrival {
        // Open-loop gates: every offered request reached a terminal fate
        // (served or explicitly shed — never silently lost), and the
        // driver kept to its schedule.
        assert_eq!(
            outcome.offered,
            n_requests,
            "open-loop driver must offer the whole schedule"
        );
        assert_eq!(
            outcome.served + outcome.shed + outcome.crashed,
            outcome.offered,
            "open-loop conservation: served {} + shed {} + crashed {} != offered {}",
            outcome.served,
            outcome.shed,
            outcome.crashed,
            outcome.offered
        );
        println!(
            "open-loop:  {kind} offered {} served {} shed {} (max schedule lag {:.0}us)",
            outcome.offered, outcome.served, outcome.shed, outcome.behind_max_us
        );
    }
    if chaos {
        // The chaos acceptance gates: zero lost requests (conservation),
        // the supervisor actually failed over and restarted the shard,
        // and the log-linear histogram resolves the tail (p50 < p99).
        let router = outcome.router.as_ref().expect("--chaos implies shards");
        let terminal = report.requests_completed
            + report.requests_failed
            + report.requests_timed_out
            + report.requests_drained;
        assert_eq!(
            report.requests_submitted, terminal,
            "conservation violated under chaos: {report:?}"
        );
        assert!(router.failovers >= 1, "chaos run must fail over: {router:?}");
        assert!(router.restarts >= 1, "failed shard must restart: {router:?}");
        assert!(
            report.latency_p50_us < report.latency_p99_us,
            "latency histogram saturated: p50 {} == p99 {}",
            report.latency_p50_us,
            report.latency_p99_us
        );
        println!("chaos:      conservation holds ({terminal}/{} terminal)", report.requests_submitted);
    }
    if !smoke && !chaos && arrival.is_none() {
        assert!(
            speedup > 1.0,
            "multi-worker batched serving should beat the sequential baseline \
             (got {served_rps:.0} vs {sequential_rps:.0} req/s)"
        );
    }

    // Close the loop against the analytical platform model.
    let workload = platform::Workload::from_network("table1-ms", &network);
    let device = platform::Device::desktop_i7_cpu();
    let fit = platform::overlay::compare_measured(
        &device,
        &workload,
        n_requests as u64,
        served_seconds,
    );
    println!(
        "model fit:  modelled {:.3}s vs measured {:.3}s on {} — ratio {:.2}",
        fit.modelled_seconds, fit.measured_seconds, device.name, fit.ratio
    );

    let router_json = match &outcome.router {
        Some(router) => serde_json::to_value(router).expect("serialize router report"),
        None => serde_json::Value::Null,
    };
    let json = serde_json::json!({
        "bench": "serve_load",
        "smoke": smoke,
        "shards": shards,
        "chaos": chaos,
        "arrival": arrival,
        "offered": outcome.offered,
        "served": outcome.served,
        "shed": outcome.shed,
        "failovers": outcome.router.as_ref().map_or(0, |r| r.failovers),
        "restarts": outcome.router.as_ref().map_or(0, |r| r.restarts),
        "router": router_json,
        "model": "table1-ms",
        "input_len": INPUT_LEN,
        "outputs": OUTPUTS,
        "requests": n_requests,
        "workers": config.workers,
        "max_batch": config.max_batch,
        "max_linger_us": config.max_linger.as_micros() as u64,
        "sequential_seconds": sequential_seconds,
        "sequential_rps": sequential_rps,
        "served_seconds": served_seconds,
        "served_rps": served_rps,
        "speedup": speedup,
        "bit_identical": true,
        "metrics": report,
        "model_fit": fit,
    });
    let out = repo_root().join("BENCH_serve.json");
    // Carry a monitor_loop section forward if that bench wrote first, so
    // the two publishers can run in either order.
    let mut json = json;
    let previous = std::fs::read_to_string(&out)
        .ok()
        .and_then(|text| serde_json::from_str::<serde_json::Value>(&text).ok())
        .and_then(|doc| match doc {
            serde_json::Value::Object(mut map) => map.remove("monitor_loop"),
            _ => None,
        });
    if let (Some(section), serde_json::Value::Object(map)) = (previous, &mut json) {
        map.insert("monitor_loop".to_string(), section);
    }
    let pretty = serde_json::to_string_pretty(&json).expect("serialize report");
    std::fs::write(&out, pretty).expect("write BENCH_serve.json");
    println!("wrote {}", out.display());

    let csv = write_csv(
        "serve_load.csv",
        "requests,workers,max_batch,sequential_rps,served_rps,speedup,p50_us,p95_us,p99_us,mean_batch",
        &[format!(
            "{n_requests},{},{},{sequential_rps:.1},{served_rps:.1},{speedup:.3},{},{},{},{:.2}",
            config.workers,
            config.max_batch,
            report.latency_p50_us,
            report.latency_p95_us,
            report.latency_p99_us,
            report.mean_batch_size
        )],
    );
    println!("wrote {}", csv.display());
}

/// What one serving run produced, regardless of which tier served it.
struct RunOutcome {
    served_seconds: f64,
    report: serve::MetricsReport,
    max_batch_seen: usize,
    mismatches: usize,
    /// Requests resolved with `WorkerCrashed` (chaos runs only).
    crashed: usize,
    router: Option<serve::RouterReport>,
    /// Requests the driver offered (== the full schedule).
    offered: usize,
    /// Requests that completed with a prediction.
    served: usize,
    /// Open-loop submissions rejected by backpressure/admission control.
    shed: usize,
    /// Worst lag of the open-loop driver behind its schedule (µs).
    behind_max_us: f64,
}

/// What the open-loop pacing stage produced: accepted tickets tagged
/// with their input index, plus shed/lag accounting.
struct OpenLoopDrive {
    tickets: Vec<(usize, Ticket)>,
    shed: usize,
    behind_max_us: f64,
}

/// Replays a seeded arrival schedule against the wall clock, submitting
/// each request at its scheduled instant regardless of completions.
/// Backpressure rejections are shed (counted, not retried) — the open
/// loop never slows down for the server.
fn drive_open_loop(
    submit: &dyn Fn(Request) -> Result<Ticket, SubmitError>,
    inputs: &[Vec<f32>],
    mut process: ArrivalProcess,
) -> OpenLoopDrive {
    let started = Instant::now();
    let mut tickets = Vec::with_capacity(inputs.len());
    let mut shed = 0usize;
    let mut behind_max_us = 0f64;
    for (index, x) in inputs.iter().enumerate() {
        let due_us = process.next_arrival_us();
        loop {
            let elapsed_us = started.elapsed().as_secs_f64() * 1e6;
            if elapsed_us >= due_us {
                behind_max_us = behind_max_us.max(elapsed_us - due_us);
                break;
            }
            let gap_us = due_us - elapsed_us;
            if gap_us > 300.0 {
                std::thread::sleep(Duration::from_micros((gap_us - 200.0) as u64));
            } else {
                std::hint::spin_loop();
            }
        }
        match submit(Request::new("table1-ms", x.clone())) {
            Ok(ticket) => tickets.push((index, ticket)),
            Err(
                SubmitError::QueueFull { .. }
                | SubmitError::Overloaded { .. }
                | SubmitError::WouldMissDeadline { .. }
                | SubmitError::NoHealthyShard,
            ) => shed += 1,
            Err(err) => panic!("open-loop submit must not fail structurally: {err}"),
        }
    }
    OpenLoopDrive {
        tickets,
        shed,
        behind_max_us,
    }
}

/// The original single-engine path: one `Engine`, no supervision.
#[allow(clippy::too_many_arguments)]
fn serve_single(
    registry: &Arc<ModelRegistry>,
    inputs: &[Vec<f32>],
    expected: &[Vec<f32>],
    config: &ServeConfig,
    retry: RetryPolicy,
    arrival: Option<ArrivalProcess>,
) -> RunOutcome {
    let engine = Engine::start(Arc::clone(registry), config.clone()).expect("start serve engine");
    let started = Instant::now();
    let (tickets, shed, behind_max_us) = match arrival {
        Some(process) => {
            let drive = drive_open_loop(&|req| engine.submit(req), inputs, process);
            (drive.tickets, drive.shed, drive.behind_max_us)
        }
        None => (
            inputs
                .iter()
                .enumerate()
                .map(|(i, x)| {
                    (
                        i,
                        engine
                            .submit_with_retry(Request::new("table1-ms", x.clone()), retry)
                            .expect("submission should succeed within the retry budget"),
                    )
                })
                .collect(),
            0,
            0.0,
        ),
    };
    let mut mismatches = 0usize;
    let mut max_batch_seen = 0usize;
    let mut served = 0usize;
    for (index, ticket) in tickets {
        let prediction = ticket.wait().expect("request should complete");
        if prediction.output != expected[index] {
            mismatches += 1;
        }
        max_batch_seen = max_batch_seen.max(prediction.batch_size);
        served += 1;
    }
    let served_seconds = started.elapsed().as_secs_f64();
    let report = engine.metrics().report();
    engine.shutdown();
    RunOutcome {
        served_seconds,
        report,
        max_batch_seen,
        mismatches,
        crashed: 0,
        router: None,
        offered: inputs.len(),
        served,
        shed,
        behind_max_us,
    }
}

/// The sharded tier: N supervised shards behind the `Router`. With
/// `chaos`, a deterministic fault plan panics a worker in shard 0 and
/// stalls a batch in shard 1 mid-run; the supervisor must fail both
/// shards over and restart them while every ticket still resolves.
#[allow(clippy::too_many_arguments)]
fn serve_sharded(
    registry: &Arc<ModelRegistry>,
    inputs: &[Vec<f32>],
    expected: &[Vec<f32>],
    config: &ServeConfig,
    shards: usize,
    chaos: bool,
    retry: RetryPolicy,
    arrival: Option<ArrivalProcess>,
) -> RunOutcome {
    let router_config = RouterConfig {
        shards,
        engine: config.clone(),
        supervisor: SupervisorConfig {
            tick: Duration::from_millis(10),
            // Wide enough that a slow-but-honest batch on a loaded CI
            // runner is not mistaken for a wedge; the injected stall
            // (800ms) still trips it decisively.
            stall_deadline: Duration::from_millis(250),
            restart_backoff_base: Duration::from_millis(20),
            max_restart_backoff: Duration::from_millis(200),
            ..SupervisorConfig::default()
        },
        ..RouterConfig::default()
    };
    let faults = chaos.then(|| {
        let mut plan = FaultPlan::new().with_worker_panic(0, 1);
        if shards > 1 {
            plan = plan.with_stall_batch(1, 1, 800);
        }
        Arc::new(plan)
    });
    let router = Router::start_with_faults(Arc::clone(registry), router_config, faults)
        .expect("start sharded router");

    let started = Instant::now();
    let (tickets, shed, behind_max_us) = match arrival {
        Some(process) => {
            let drive = drive_open_loop(&|req| router.submit(req), inputs, process);
            (drive.tickets, drive.shed, drive.behind_max_us)
        }
        None => (
            inputs
                .iter()
                .enumerate()
                .map(|(i, x)| {
                    (
                        i,
                        router
                            .submit_with_retry(Request::new("table1-ms", x.clone()), retry)
                            .expect("submission should succeed within the retry budget"),
                    )
                })
                .collect::<Vec<(usize, Ticket)>>(),
            0,
            0.0,
        ),
    };
    let mut mismatches = 0usize;
    let mut max_batch_seen = 0usize;
    let mut crashed = 0usize;
    let mut served = 0usize;
    for (index, ticket) in tickets {
        match ticket.wait() {
            Ok(prediction) => {
                if prediction.output != expected[index] {
                    mismatches += 1;
                }
                max_batch_seen = max_batch_seen.max(prediction.batch_size);
                served += 1;
            }
            Err(serve::ServeError::WorkerCrashed) if chaos => crashed += 1,
            Err(err) => panic!("request must not fail outside injected faults: {err}"),
        }
    }
    let served_seconds = started.elapsed().as_secs_f64();

    // Let the tier quiesce (detached stalled workers finish late, the
    // supervisor restarts failed shards) before taking the final report.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let report = router.report();
        let total = &report.total;
        let terminal = total.requests_completed
            + total.requests_failed
            + total.requests_timed_out
            + total.requests_drained;
        let quiesced = terminal == total.requests_submitted
            && (!chaos || (report.failovers >= 1 && report.restarts >= 1));
        if quiesced || Instant::now() >= deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }

    let report = router.report();
    let total = report.total.clone();
    router.shutdown();
    RunOutcome {
        served_seconds,
        report: total,
        max_batch_seen,
        mismatches,
        crashed,
        router: Some(report),
        offered: inputs.len(),
        served,
        shed,
        behind_max_us,
    }
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

/// Asserts that span-wrapped `Network::predict` with no collector
/// installed stays within 5% of the bare call (best of several
/// interleaved passes, so scheduler noise hits both sides equally).
fn overhead_gate(network: &mut neural::Network, inputs: &[Vec<f32>]) {
    let sample = &inputs[..inputs.len().min(64)];
    let mut plain_best = f64::INFINITY;
    let mut spanned_best = f64::INFINITY;
    for _ in 0..7 {
        let started = Instant::now();
        for x in sample {
            std::hint::black_box(network.predict(x));
        }
        plain_best = plain_best.min(started.elapsed().as_secs_f64());
        let started = Instant::now();
        for x in sample {
            let _span = obs::span!("bench.predict");
            std::hint::black_box(network.predict(x));
        }
        spanned_best = spanned_best.min(started.elapsed().as_secs_f64());
    }
    let ratio = spanned_best / plain_best;
    println!(
        "overhead:   disabled-span predict {:.3}ms vs bare {:.3}ms over {} inputs (ratio {ratio:.4})",
        spanned_best * 1e3,
        plain_best * 1e3,
        sample.len()
    );
    assert!(
        ratio <= 1.05,
        "disabled-path span overhead must stay within 5% of the bare predict \
         (got {ratio:.4}; spanned {spanned_best:.6}s vs plain {plain_best:.6}s)"
    );
}

/// Parses the written chrome-trace JSON and asserts the serving spans
/// landed with correct nesting: at least one `serve.request` inside a
/// `serve.batch` on the same worker thread.
fn validate_trace(path: &std::path::Path) {
    let text = std::fs::read_to_string(path).expect("read trace file");
    let doc: serde_json::Value = serde_json::from_str(&text).expect("trace must be valid JSON");
    let events = doc["traceEvents"].as_array().expect("traceEvents array");
    let spans = |name: &str| -> Vec<(i64, f64, f64)> {
        events
            .iter()
            .filter(|e| e["ph"] == "X" && e["name"] == name)
            .map(|e| {
                (
                    e["tid"].as_i64().expect("tid"),
                    e["ts"].as_f64().expect("ts"),
                    e["dur"].as_f64().expect("dur"),
                )
            })
            .collect()
    };
    let batches = spans("serve.batch");
    let requests = spans("serve.request");
    assert!(!batches.is_empty(), "trace must contain serve.batch spans");
    assert!(
        !requests.is_empty(),
        "trace must contain serve.request spans"
    );
    let nested = requests.iter().any(|&(tid, ts, dur)| {
        batches
            .iter()
            .any(|&(btid, bts, bdur)| btid == tid && bts <= ts && ts + dur <= bts + bdur + 1e-6)
    });
    assert!(
        nested,
        "at least one serve.request span must nest inside a serve.batch span"
    );
    println!(
        "trace:      {} events ({} serve.batch, {} serve.request, nesting verified)",
        events.len(),
        batches.len(),
        requests.len()
    );
}
