//! Figure 6: mean absolute error on measured data for ANNs trained with
//! simulators parameterized with different numbers of measurement series
//! (10, 25, 50, 75, 100, 150 per mixture; 14 mixtures each).
//!
//! Paper findings to reproduce (§III.A.2):
//! * on *simulated* validation data all six networks are equivalent
//!   (0.20–0.22 % MAE) — even the 10-sample simulator looks fine;
//! * on *measured* data the 10-sample network is clearly worst
//!   (2.18 %); the others land in a comparable 1.39–1.83 % band with no
//!   monotonic improvement (the paper attributes the non-monotonicity to
//!   the random selection of measurement series).

#![forbid(unsafe_code)]

use bench::{TraceSession, banner, pct, pick, write_csv};
use chem::fragmentation::GasLibrary;
use ms_sim::campaign::{run_calibration_campaign, run_evaluation_campaign, MS_TASK_SUBSTANCES};
use ms_sim::characterize::Characterizer;
use ms_sim::instrument::default_axis;
use ms_sim::prototype::MmsPrototype;
use ms_sim::simulate::TrainingSimulator;
use neural::optim::OptimizerSpec;
use neural::train::{Dataset, TrainConfig, Trainer};
use neural::Loss;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spectroai::pipeline::ms::{evaluate_on, ActivationChoice, MsPipeline};

fn main() {
    banner(
        "Figure 6 — simulator sample-count study",
        "Fricke et al. 2021, Fig. 6",
    );
    let _trace = TraceSession::from_args();
    let sample_counts: &[usize] = &[10, 25, 50, 75, 100, 150];
    let training_spectra = pick(3_000, 12_000);
    let epochs = pick(16, 30);
    let val_target = pick(0.009f32, 0.005f32);
    let eval_samples = pick(10, 20);
    let seed = 42u64;
    let axis = default_axis();

    // One shared measured evaluation campaign from an independent
    // prototype session.
    let mut eval_prototype = MmsPrototype::new(seed + 1000);
    let measured =
        run_evaluation_campaign(&mut eval_prototype, eval_samples).expect("evaluation campaign");

    println!(
        "training {} networks ({} spectra x {} epochs each)\n",
        sample_counts.len(),
        training_spectra,
        epochs
    );
    println!(
        "{:>8} {:>10} {:>10}   per-substance measured MAE",
        "samples", "sim MAE", "meas MAE"
    );
    let mut rows = Vec::new();
    for &count in sample_counts {
        // A fresh prototype per count (same hardware seed) isolates the
        // effect of the calibration budget.
        let mut prototype = MmsPrototype::new(seed);
        let calibration =
            run_calibration_campaign(&mut prototype, count).expect("calibration campaign");
        let characterization = Characterizer::new(GasLibrary::standard(), Some("He".into()))
            .characterize(&calibration)
            .expect("characterization");
        let simulator = TrainingSimulator::new(
            characterization.model.clone(),
            GasLibrary::standard(),
            MS_TASK_SUBSTANCES.iter().map(|&s| s.to_string()).collect(),
            axis,
        )
        .expect("simulator");
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let simulated = simulator
            .generate_dataset(training_spectra, &mut rng)
            .expect("training data");
        let dataset =
            Dataset::new(simulated.inputs_f32(), simulated.labels_f32()).expect("dataset");
        let (train, validation) = dataset.split(0.8).expect("split");

        let spec = MsPipeline::table1_spec(
            axis.len(),
            MS_TASK_SUBSTANCES.len(),
            ActivationChoice::paper_best(),
        );
        let mut network = spec.build(seed).expect("network");
        let config = TrainConfig {
            epochs,
            batch_size: 16,
            optimizer: OptimizerSpec::Adam { lr: 2e-3 },
            loss: Loss::Mae,
            shuffle: true,
            seed,
            restore_best: true,
            stop_at_val_loss: Some(val_target),
        };
        Trainer::new(config)
            .fit(&mut network, &train, Some(&validation))
            .expect("training");
        let sim_per = validation.per_output_mae(&mut network);
        let sim_mae = sim_per.iter().sum::<f64>() / sim_per.len() as f64;
        let (meas_mae, meas_per) = evaluate_on(&mut network, &measured).expect("evaluation");
        let per: Vec<String> = meas_per.iter().map(|&v| pct(v)).collect();
        println!(
            "{count:>8} {:>10} {:>10}   [{}]",
            pct(sim_mae),
            pct(meas_mae),
            per.join(", ")
        );
        rows.push(format!(
            "{count},{sim_mae:.6},{meas_mae:.6},{}",
            meas_per
                .iter()
                .map(|v| format!("{v:.6}"))
                .collect::<Vec<_>>()
                .join(",")
        ));
    }
    let path = write_csv(
        "fig6_sample_counts.csv",
        &format!(
            "samples_per_mixture,sim_mae,measured_mae,{}",
            MS_TASK_SUBSTANCES.join(",")
        ),
        &rows,
    );
    println!("\nseries written to {}", path.display());
    println!("paper shape: 10 samples clearly worst (2.18%); 25-150 in a 1.39-1.83% band.");
}
