//! Table 2: execution time, power and energy of running the complete
//! 21 600-sample dataset through the Table 1 network on Jetson Nano and
//! Jetson TX2, CPU vs GPU.
//!
//! Our numbers come from the analytical platform model (`platform`
//! crate) driven by the MAC count of the *actually built* network —
//! see DESIGN.md §2 for the hardware-substitution rationale. The paper's
//! measured values are printed alongside for comparison.

#![forbid(unsafe_code)]

use bench::{TraceSession, banner, write_csv};
use ms_sim::campaign::MS_TASK_SUBSTANCES;
use platform::{estimate, Device, Workload};
use spectroai::pipeline::ms::{ActivationChoice, MsPipeline};

/// The paper's measured values: (device, seconds, watts, joules).
const PAPER: [(&str, f64, f64, f64); 4] = [
    ("Jetson Nano (CPU)", 30.19, 5.03, 151.86),
    ("Jetson Nano (GPU)", 6.34, 4.77, 30.24),
    ("Jetson TX2 (CPU)", 21.64, 5.92, 128.11),
    ("Jetson TX2 (GPU)", 3.03, 6.68, 20.24),
];

fn main() {
    banner("Table 2 — embedded execution study", "Fricke et al. 2021, Table 2");
    let _trace = TraceSession::from_args();
    let samples = 21_600u64;
    let network = MsPipeline::table1_spec(397, MS_TASK_SUBSTANCES.len(), ActivationChoice::paper_best())
        .build(0)
        .expect("network");
    let workload = Workload::from_network("table1-net", &network);
    println!(
        "workload: {} parameters, {:.3} M MACs/inference, {} samples\n",
        workload.parameters,
        workload.macs_per_inference as f64 / 1e6,
        samples
    );

    println!(
        "{:<20} {:>10} {:>9} {:>10}   {:>10} {:>9} {:>10}",
        "platform", "time/s", "power/W", "energy/J", "paper t/s", "paper W", "paper J"
    );
    let mut rows = Vec::new();
    for (device, paper) in Device::jetson_presets().iter().zip(PAPER) {
        let run = estimate(device, &workload, samples);
        println!(
            "{:<20} {:>10.2} {:>9.2} {:>10.2}   {:>10.2} {:>9.2} {:>10.2}",
            device.name, run.seconds, run.power_watts, run.energy_joules, paper.1, paper.2, paper.3
        );
        rows.push(format!(
            "{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}",
            device.name, run.seconds, run.power_watts, run.energy_joules, paper.1, paper.2, paper.3
        ));
    }

    // The paper's derived claims.
    let nano_cpu = estimate(&Device::jetson_nano_cpu(), &workload, samples);
    let nano_gpu = estimate(&Device::jetson_nano_gpu(), &workload, samples);
    let tx2_cpu = estimate(&Device::jetson_tx2_cpu(), &workload, samples);
    let tx2_gpu = estimate(&Device::jetson_tx2_gpu(), &workload, samples);
    println!("\nderived claims (paper in brackets):");
    println!(
        "  GPU speedup:        Nano {:.1}x, TX2 {:.1}x   [4.8x - 7.1x]",
        nano_cpu.seconds / nano_gpu.seconds,
        tx2_cpu.seconds / tx2_gpu.seconds
    );
    println!(
        "  GPU energy factor:  Nano {:.1}x, TX2 {:.1}x   [5.0x - 6.3x]",
        nano_cpu.energy_joules / nano_gpu.energy_joules,
        tx2_cpu.energy_joules / tx2_gpu.energy_joules
    );
    println!(
        "  2x CUDA cores:      {:.1}x faster, {:.1}x less energy   [2.1x, 1.5x]",
        nano_gpu.seconds / tx2_gpu.seconds,
        nano_gpu.energy_joules / tx2_gpu.energy_joules
    );

    let path = write_csv(
        "table2_platforms.csv",
        "platform,model_s,model_w,model_j,paper_s,paper_w,paper_j",
        &rows,
    );
    println!("\nseries written to {}", path.display());
}
