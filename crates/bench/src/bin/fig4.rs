//! Figure 4: the ideal line spectrum from Tool 1 (blue) versus the
//! simulated continuous spectrum from Tool 3 (orange) for one specific
//! substance mixture.
//!
//! Paper shape to reproduce: the continuous spectrum shows broadened
//! peaks at every stick position, plus one peak with **no counterpart in
//! the line spectrum** — the ignition-gas contribution ("the peak in the
//! simulated continuous spectrum which has no counterpart in the
//! line-spectrum is caused by the utilized ignition gas").

#![forbid(unsafe_code)]

use bench::{TraceSession, banner, write_csv};
use chem::fragmentation::GasLibrary;
use chem::Mixture;
use ms_sim::ideal::IdealSpectrumGenerator;
use ms_sim::instrument::{default_axis, nominal_instrument};
use ms_sim::simulate::TrainingSimulator;

fn main() {
    banner("Figure 4 — ideal vs simulated spectrum", "Fricke et al. 2021, Fig. 4");
    let _trace = TraceSession::from_args();

    // One specific mixture, as in the paper's figure.
    let mixture = Mixture::from_fractions(vec![
        ("N2".into(), 0.55),
        ("O2".into(), 0.15),
        ("CO2".into(), 0.20),
        ("Ar".into(), 0.10),
    ])
    .expect("static mixture");
    println!("mixture: {:?}\n", mixture.parts());

    // Tool 1: ideal line spectrum (no ignition gas, no instrument).
    let generator = IdealSpectrumGenerator::new(GasLibrary::standard());
    let line = generator.generate(&mixture).expect("ideal spectrum");

    // Tool 3: simulated continuous spectrum from the nominal instrument.
    let axis = default_axis();
    let simulator = TrainingSimulator::new(
        nominal_instrument(),
        GasLibrary::standard(),
        mixture.names().iter().map(|s| s.to_string()).collect(),
        axis,
    )
    .expect("simulator");
    let continuous = simulator.simulate_clean(&mixture).expect("simulated spectrum");

    // Print the stick table.
    println!("Tool 1 line spectrum ({} sticks):", line.len());
    println!("{:>8} {:>12}", "m/z", "intensity");
    for &(mz, intensity) in line.sticks() {
        if intensity > 1e-4 {
            println!("{mz:>8.2} {intensity:>12.5}");
        }
    }

    // The ignition-gas peak: present in the continuous trace, absent from
    // the line spectrum.
    let he_line = line.intensity_at(4.0);
    let he_continuous = continuous.sample_at(4.0);
    println!("\nignition-gas check at m/z 4 (He):");
    println!("  line spectrum intensity : {he_line:.5} (no counterpart)");
    println!("  continuous sample       : {he_continuous:.5} (ignition gas visible)");
    assert_eq!(he_line, 0.0, "He must be absent from the ideal spectrum");
    assert!(
        he_continuous > 0.01,
        "He ignition peak must appear in the simulated spectrum"
    );

    // Peak-for-stick correspondence at the strongest sticks.
    println!("\nstick -> continuous peak correspondence:");
    for &(mz, intensity) in line.sticks() {
        if intensity < 0.05 {
            continue;
        }
        let peak = continuous.sample_at(mz + 0.0);
        println!("  m/z {mz:>6.2}: stick {intensity:.4} -> continuous {peak:.4}");
    }

    // Export both series for plotting.
    let line_rows: Vec<String> = line
        .sticks()
        .iter()
        .map(|&(mz, i)| format!("{mz:.4},{i:.6}"))
        .collect();
    let cont_rows: Vec<String> = continuous
        .iter()
        .map(|(x, y)| format!("{x:.4},{y:.6}"))
        .collect();
    let p1 = write_csv("fig4_line_spectrum.csv", "mz,intensity", &line_rows);
    let p2 = write_csv("fig4_simulated_spectrum.csv", "mz,intensity", &cont_rows);
    println!("\nseries written to {} and {}", p1.display(), p2.display());
}
