//! Drives the `monitor` crate's closed loop end-to-end and publishes the
//! episode report: streaming inference through the sharded tier, drift
//! detection, auto-recharacterization, zero-drop hot swaps — under the
//! same chaos the monitor chaos suite injects (sensor dropouts, an
//! injected characterization failure, two mid-swap worker panics).
//!
//! On top of the monitor's own window traffic, a seeded open-loop
//! arrival process (`bench::arrival`) submits background inference
//! against the same router each tick, so the swaps happen under load
//! that is not the monitor's to pace.
//!
//! Asserts the ISSUE invariants — at least two full drift →
//! recharacterize → swap episodes, zero dropped requests (monitor and
//! background), every episode exactly one terminal, the post-swap model
//! fit back under the drift threshold — and merges a `monitor_loop`
//! section into `BENCH_serve.json` (preserving `serve_load`'s report)
//! plus a CSV episode series. `--smoke` shortens the tail for CI;
//! `--trace <out.json>` writes a chrome-trace profile of the run.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bench::arrival::ArrivalProcess;
use bench::{banner, pick, write_csv, TraceSession};
use chem::Mixture;
use datastore::Store;
use faultsim::FaultPlan;
use monitor::{
    bootstrap, DetectorConfig, DriftAction, DriftDetector, DriftSchedule, EpisodeOutcome,
    MonitorConfig, MonitorLoop, MsStream, RecharacterizeConfig,
};
use ms_sim::instrument::InstrumentModel;
use serve::{ModelRegistry, Request, RetryPolicy, Router, RouterConfig, SupervisorConfig};

/// Virtual wall-clock span one monitor tick represents for the
/// background arrival schedule (the prototype measures a window every
/// few seconds in reality; the bench compresses that to stay fast).
const TICK_SPAN_US: f64 = 2_000.0;

/// Background submissions allowed per tick (bounds a burst so the
/// admission queue is exercised, not buried).
const MAX_BG_PER_TICK: usize = 64;

fn process_mixture() -> Mixture {
    Mixture::from_fractions(vec![
        ("N2".into(), 0.55),
        ("O2".into(), 0.18),
        ("Ar".into(), 0.02),
        ("CO2".into(), 0.25),
    ])
    .expect("process mixture fractions are valid")
}

fn drift_one(base: &InstrumentModel) -> InstrumentModel {
    let mut instrument = base.clone();
    instrument.attenuation.rate = -1.0 / 60.0;
    instrument.mass_offset += 0.3;
    instrument
}

fn drift_two(base: &InstrumentModel) -> InstrumentModel {
    let mut instrument = drift_one(base);
    instrument.peak_width.base = 0.70;
    instrument.mass_offset += 0.25;
    instrument.attenuation.rate = -1.0 / 45.0;
    instrument
}

/// Supervision matched to bench-scale ticks (a couple of milliseconds):
/// shard healing after an injected panic completes within a few ticks.
fn fast_supervision() -> RouterConfig {
    RouterConfig {
        supervisor: SupervisorConfig {
            tick: Duration::from_millis(1),
            restart_backoff_base: Duration::from_millis(1),
            max_restart_backoff: Duration::from_millis(20),
            circuit_cooldown: Duration::from_millis(5),
            ..SupervisorConfig::default()
        },
        ..RouterConfig::default()
    }
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    banner(
        "monitor_loop — closed-loop monitoring: drift → recharacterize → swap",
        "DESIGN.md §13 (the paper's four tools, run unattended)",
    );

    let ticks: u64 = if smoke { 80 } else { pick(80, 240) };

    // Seeded drifting stream: bootstrap consumes 28 calibration draws,
    // the detector learns over 6 windows, drift one lands at position
    // 60, drift two after episode one has closed.
    let base = MsStream::new(7, process_mixture(), 4, DriftSchedule::new())
        .true_instrument()
        .clone();
    let schedule = DriftSchedule::new()
        .at(60, DriftAction::SetInstrument(drift_one(&base)))
        .at(260, DriftAction::SetInstrument(drift_two(&base)));
    let mut stream = MsStream::new(7, process_mixture(), 4, schedule);

    // The chaos plan of the monitor chaos suite: dropouts in learning
    // and calibration, a failed first re-characterization attempt, and
    // (via MonitorConfig below) two armed mid-swap worker panics.
    let plan = Arc::new(
        FaultPlan::new()
            .with_sensor_dropout(30)
            .with_sensor_dropout(40)
            .with_sensor_dropout(41)
            .with_sensor_dropout(42)
            .with_sensor_dropout(43)
            .with_sensor_dropout(115)
            .with_sensor_dropout(120)
            .with_sensor_dropout(125)
            .with_characterize_error(0),
    );

    let trace = TraceSession::from_args();

    let store = Store::in_memory();
    let registry = Arc::new(ModelRegistry::new());
    let config = RecharacterizeConfig::quick("mms").expect("serving axis constants are valid");
    let started = Instant::now();
    let boot = bootstrap(&mut stream, &store, &registry, &config, &plan)
        .expect("bootstrap characterize/train/publish");
    println!(
        "bootstrap:  published v{} in {:.2}s (believed attenuation rate {:.5})",
        boot.version,
        started.elapsed().as_secs_f64(),
        boot.believed.attenuation.rate,
    );

    let router = Router::start_with_faults(
        Arc::clone(&registry),
        fast_supervision(),
        Some(Arc::clone(&plan)),
    )
    .expect("start sharded router");

    let serving_axis_len = config.serving_axis.len();
    let detector = DriftDetector::new(DetectorConfig::default()).expect("default detector config");
    let monitor_config = MonitorConfig {
        chaos_mid_swap_panics: 2,
        ..MonitorConfig::default()
    };
    let mut monitor = MonitorLoop::new(
        stream,
        detector,
        &router,
        &store,
        &plan,
        monitor_config,
        config,
        boot.believed,
        boot.version,
    )
    .expect("believed render for the monitor loop");

    // Background load: open-loop Poisson arrivals mapped onto the tick
    // axis (TICK_SPAN_US virtual microseconds per tick).
    let mut arrivals = ArrivalProcess::poisson(97, 2_000.0);
    let mut next_due_us = arrivals.next_arrival_us();
    let retry = RetryPolicy {
        max_attempts: 16,
        base_delay_ms: 1,
        backoff: 1.5,
    };
    let bg_input = vec![0.25f32; serving_axis_len];
    let mut bg_offered = 0u64;
    let mut bg_served = 0u64;
    let mut bg_crash_retried = 0u64;

    let run_started = Instant::now();
    for _ in 0..ticks {
        let tick = monitor.tick().expect("monitor tick");
        if let Some(closed) = &tick.closed_episode {
            println!(
                "episode {}: {:?} open@{} confirm@{:?} close@{} ({:.0}ms) fit {:.3} -> {:.3} \
                 char x{} swap x{}{}",
                closed.episode,
                closed.outcome,
                closed.opened_at_tick,
                closed.confirmed_at_tick,
                closed.closed_at_tick,
                closed.open_to_terminal.as_secs_f64() * 1e3,
                closed.fit_at_open,
                closed.fit_at_close,
                closed.characterize_attempts,
                closed.swap_attempts,
                closed
                    .new_version
                    .map(|v| format!(" -> v{v}"))
                    .unwrap_or_default(),
            );
        }
        // Background arrivals due inside this tick's virtual span.
        let tick_end_us = tick.tick as f64 * TICK_SPAN_US;
        let mut due = 0usize;
        while next_due_us <= tick_end_us && due < MAX_BG_PER_TICK {
            next_due_us = arrivals.next_arrival_us();
            due += 1;
        }
        let mut tickets = Vec::with_capacity(due);
        for _ in 0..due {
            bg_offered += 1;
            let request = Request::new("mms", bg_input.clone())
                .with_deadline(Duration::from_secs(5));
            tickets.push(
                router
                    .submit_with_retry(request, retry)
                    .expect("background submission within retry budget"),
            );
        }
        for ticket in tickets {
            let mut outcome = ticket.wait();
            // A crash-resolved background request is resubmitted, same
            // zero-drop policy as the monitor's own windows.
            let mut attempts = 0;
            while matches!(outcome, Err(serve::ServeError::WorkerCrashed)) && attempts < 8 {
                attempts += 1;
                bg_crash_retried += 1;
                let request = Request::new("mms", bg_input.clone())
                    .with_deadline(Duration::from_secs(5));
                outcome = match router.submit_with_retry(request, retry) {
                    Ok(ticket) => ticket.wait(),
                    Err(_) => Err(serve::ServeError::WorkerCrashed),
                };
            }
            match outcome {
                Ok(_) => bg_served += 1,
                Err(err) => panic!("background request dropped: {err}"),
            }
        }
    }
    let run_seconds = run_started.elapsed().as_secs_f64();
    let report = monitor.into_report().expect("episode conservation");
    report.check_conservation().expect("episode conservation");
    let router_report = router.report();
    router.shutdown();
    if let Some(trace_path) = trace.finish() {
        validate_trace(&trace_path, report.ticks);
    }

    // ── The ISSUE invariants ────────────────────────────────────────
    assert_eq!(report.dropped, 0, "monitor dropped requests: {report:?}");
    assert_eq!(bg_offered, bg_served, "background traffic dropped");
    let swapped: Vec<_> = report
        .episodes
        .iter()
        .filter(|e| e.outcome == EpisodeOutcome::Swapped)
        .collect();
    assert!(
        swapped.len() >= 2,
        "expected >=2 drift->recharacterize->swap episodes, got {:?}",
        report.episodes
    );
    assert!(!report.open_episode, "an episode leaked past the run");
    let final_fit = report.final_fit.expect("final window scored");
    assert!(
        final_fit < 0.3,
        "post-swap fit {final_fit:.3} did not recover under the drift threshold"
    );

    println!(
        "loop:       {} ticks in {run_seconds:.2}s — {} episodes ({} swapped), serving v{}",
        report.ticks,
        report.episodes.len(),
        swapped.len(),
        report.serving_version.unwrap_or(0),
    );
    println!(
        "traffic:    monitor {} served / {} dropped ({} resubmitted), background {} served \
         ({} crash-retried)",
        report.served, report.dropped, report.resubmitted, bg_served, bg_crash_retried,
    );
    println!(
        "stream:     {} sensor dropouts absorbed, {} windows rejected at the fit boundary",
        report.sensor_dropouts, report.windows_rejected,
    );
    println!(
        "recovery:   final fit {final_fit:.3} (baseline {:?}) after {} swaps",
        report.final_baseline.map(|b| (b * 1000.0).round() / 1000.0),
        swapped.len(),
    );

    // ── Publish ─────────────────────────────────────────────────────
    let episodes_json: Vec<serde_json::Value> = report
        .episodes
        .iter()
        .map(|e| {
            serde_json::json!({
                "episode": e.episode,
                "outcome": format!("{:?}", e.outcome),
                "opened_at_tick": e.opened_at_tick,
                "confirmed_at_tick": e.confirmed_at_tick,
                "closed_at_tick": e.closed_at_tick,
                "detect_to_swap_ms": e.open_to_terminal.as_secs_f64() * 1e3,
                "fit_at_open": e.fit_at_open,
                "fit_at_close": e.fit_at_close,
                "new_version": e.new_version,
                "characterize_attempts": e.characterize_attempts,
                "swap_attempts": e.swap_attempts,
                "calibration_dropouts": e.calibration_dropouts,
                "failure": e.failure,
            })
        })
        .collect();
    let payload = serde_json::json!({
        "bench": "monitor_loop",
        "smoke": smoke,
        "ticks": report.ticks,
        "run_seconds": run_seconds,
        "episodes": episodes_json,
        "episodes_swapped": swapped.len(),
        "served": report.served,
        "dropped": report.dropped,
        "resubmitted": report.resubmitted,
        "background_served": bg_served,
        "background_crash_retried": bg_crash_retried,
        "sensor_dropouts": report.sensor_dropouts,
        "windows_rejected": report.windows_rejected,
        "final_fit": final_fit,
        "final_baseline": report.final_baseline,
        "serving_version": report.serving_version,
        "router_restarts": router_report.restarts,
        "router_failovers": router_report.failovers,
    });
    let out = repo_root().join("BENCH_serve.json");
    let merged = merge_into_bench_json(&out, "monitor_loop", payload);
    std::fs::write(&out, merged).expect("write BENCH_serve.json");
    println!("wrote {} (monitor_loop section)", out.display());

    let rows: Vec<String> = report
        .episodes
        .iter()
        .map(|e| {
            format!(
                "{},{:?},{},{},{},{:.1},{:.4},{:.4},{},{}",
                e.episode,
                e.outcome,
                e.opened_at_tick,
                e.confirmed_at_tick.map_or(0, |t| t),
                e.closed_at_tick,
                e.open_to_terminal.as_secs_f64() * 1e3,
                e.fit_at_open,
                e.fit_at_close,
                e.characterize_attempts,
                e.swap_attempts,
            )
        })
        .collect();
    let csv = write_csv(
        "monitor_loop.csv",
        "episode,outcome,opened_tick,confirmed_tick,closed_tick,detect_to_swap_ms,fit_open,fit_close,characterize_attempts,swap_attempts",
        &rows,
    );
    println!("wrote {}", csv.display());
}

/// Sets `key` in the existing `BENCH_serve.json` object (other benches'
/// sections survive); starts a fresh object when the file is missing or
/// not a JSON object.
fn merge_into_bench_json(
    path: &std::path::Path,
    key: &str,
    payload: serde_json::Value,
) -> String {
    let mut doc = std::fs::read_to_string(path)
        .ok()
        .and_then(|text| serde_json::from_str::<serde_json::Value>(&text).ok())
        .and_then(|value| match value {
            serde_json::Value::Object(map) => Some(map),
            _ => None,
        })
        .unwrap_or_default();
    doc.insert(key.to_string(), payload);
    serde_json::to_string_pretty(&serde_json::Value::Object(doc))
        .expect("serialize merged report")
}

/// Parses the chrome-trace profile and asserts the loop's spans landed:
/// one `monitor.tick` per tick, with the recharacterization phases
/// present.
fn validate_trace(path: &std::path::Path, ticks: u64) {
    let text = std::fs::read_to_string(path).expect("read trace file");
    let doc: serde_json::Value = serde_json::from_str(&text).expect("trace must be valid JSON");
    let events = doc["traceEvents"].as_array().expect("traceEvents array");
    let count = |name: &str| {
        events
            .iter()
            .filter(|e| e["ph"] == "X" && e["name"] == name)
            .count() as u64
    };
    let tick_spans = count("monitor.tick");
    let step_spans = count("monitor.recharacterize_step");
    let train_spans = count("monitor.train");
    assert_eq!(
        tick_spans, ticks,
        "trace must carry one monitor.tick span per tick"
    );
    assert!(
        step_spans >= 2 && train_spans >= 2,
        "trace must show the recharacterization phases \
         ({step_spans} steps, {train_spans} trainings)"
    );
    println!(
        "trace:      {} events ({tick_spans} monitor.tick, {step_spans} recharacterize steps)",
        events.len(),
    );
}

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}
