//! Shared helpers for the experiment-harness binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! DESIGN.md §4). All harnesses run at a CI-friendly scale by default and
//! switch to paper-scale workloads when the environment variable
//! `SPECTROAI_FULL=1` is set.

#![forbid(unsafe_code)]

use std::io::Write;
use std::path::PathBuf;

/// Returns `true` when paper-scale workloads were requested via
/// `SPECTROAI_FULL=1`.
pub fn full_scale() -> bool {
    std::env::var("SPECTROAI_FULL").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

/// Picks `quick` or `full` depending on [`full_scale`].
pub fn pick<T>(quick: T, full: T) -> T {
    if full_scale() {
        full
    } else {
        quick
    }
}

/// The directory experiment outputs (CSV series) are written to:
/// `target/experiments/`.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// Writes a CSV file into [`experiments_dir`] and returns its path.
///
/// # Panics
///
/// Panics on I/O failure (harness binaries want loud failures).
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = experiments_dir().join(name);
    let mut file = std::fs::File::create(&path).expect("create csv");
    writeln!(file, "{header}").expect("write header");
    for row in rows {
        writeln!(file, "{row}").expect("write row");
    }
    path
}

/// Prints a banner naming the experiment and its scale.
pub fn banner(experiment: &str, paper_ref: &str) {
    println!("================================================================");
    println!("{experiment}  —  reproduces {paper_ref}");
    println!(
        "scale: {} (set SPECTROAI_FULL=1 for paper-scale workloads)",
        if full_scale() { "FULL" } else { "quick" }
    );
    println!("================================================================");
}

/// Formats a fraction as percent with two decimals (the paper reports
/// MAE in percent).
pub fn pct(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_percent() {
        assert_eq!(pct(0.015), "1.50%");
    }

    #[test]
    fn pick_respects_scale() {
        // Cannot portably set env vars in parallel tests; just check the
        // quick path (CI never sets SPECTROAI_FULL).
        if !full_scale() {
            assert_eq!(pick(1, 2), 1);
        }
    }

    #[test]
    fn experiments_dir_is_creatable() {
        let dir = experiments_dir();
        assert!(dir.exists());
    }
}
