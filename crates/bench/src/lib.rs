//! Shared helpers for the experiment-harness binaries.
//!
//! Every binary regenerates one table or figure of the paper (see
//! DESIGN.md §4). All harnesses run at a CI-friendly scale by default and
//! switch to paper-scale workloads when the environment variable
//! `SPECTROAI_FULL=1` is set.

#![forbid(unsafe_code)]

pub mod arrival;

use std::io::Write;
use std::path::PathBuf;

/// Returns `true` when paper-scale workloads were requested via
/// `SPECTROAI_FULL=1`.
pub fn full_scale() -> bool {
    std::env::var("SPECTROAI_FULL").is_ok_and(|v| v == "1" || v.eq_ignore_ascii_case("true"))
}

/// Picks `quick` or `full` depending on [`full_scale`].
pub fn pick<T>(quick: T, full: T) -> T {
    if full_scale() {
        full
    } else {
        quick
    }
}

/// The directory experiment outputs (CSV series) are written to:
/// `target/experiments/`.
pub fn experiments_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../target/experiments");
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    dir
}

/// Writes a CSV file into [`experiments_dir`] and returns its path.
///
/// # Panics
///
/// Panics on I/O failure (harness binaries want loud failures).
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> PathBuf {
    let path = experiments_dir().join(name);
    let mut file = std::fs::File::create(&path).expect("create csv");
    writeln!(file, "{header}").expect("write header");
    for row in rows {
        writeln!(file, "{row}").expect("write row");
    }
    path
}

/// Prints a banner naming the experiment and its scale.
pub fn banner(experiment: &str, paper_ref: &str) {
    println!("================================================================");
    println!("{experiment}  —  reproduces {paper_ref}");
    println!(
        "scale: {} (set SPECTROAI_FULL=1 for paper-scale workloads)",
        if full_scale() { "FULL" } else { "quick" }
    );
    println!("================================================================");
}

/// Formats a fraction as percent with two decimals (the paper reports
/// MAE in percent).
pub fn pct(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

/// `--trace <out.json>` support for harness binaries: installs an
/// `obs::Collector` for the run and writes a chrome-trace JSON profile
/// (loadable in `about://tracing` / Perfetto) on [`TraceSession::finish`].
///
/// Constructed from CLI args; when `--trace` is absent nothing is
/// installed and instrumented code stays on the disabled fast path.
#[derive(Debug, Default)]
pub struct TraceSession {
    active: Option<(PathBuf, obs::InstallGuard)>,
}

impl TraceSession {
    /// Journal capacity for harness traces — sized for full-scale runs
    /// (20k requests → ~40k span/gauge records) with headroom.
    const JOURNAL_CAPACITY: usize = 1 << 18;

    /// Parses `--trace <path>` out of the process arguments and, when
    /// present, installs a collector for the rest of the run.
    pub fn from_args() -> Self {
        let mut args = std::env::args();
        while let Some(arg) = args.next() {
            if arg == "--trace" {
                let Some(path) = args.next() else {
                    eprintln!("--trace requires an output path; tracing disabled");
                    return Self::default();
                };
                let guard = obs::install(
                    obs::Collector::new().with_journal_capacity(Self::JOURNAL_CAPACITY),
                );
                println!("tracing:    chrome-trace profile -> {path}");
                return Self {
                    active: Some((PathBuf::from(path), guard)),
                };
            }
        }
        Self::default()
    }

    /// Whether a trace is being collected.
    pub fn is_tracing(&self) -> bool {
        self.active.is_some()
    }

    /// Writes the chrome-trace JSON (if tracing) and uninstalls the
    /// collector. Returns the output path when a profile was written.
    ///
    /// Binaries that don't need the path can rely on `Drop`, which does
    /// the same thing (minus the panic on I/O failure).
    ///
    /// # Panics
    ///
    /// Panics on I/O failure (harness binaries want loud failures).
    pub fn finish(mut self) -> Option<PathBuf> {
        self.active.take().map(|(path, guard)| {
            write_profile(&path, &guard).expect("write chrome trace");
            path
        })
    }
}

impl Drop for TraceSession {
    fn drop(&mut self) {
        if let Some((path, guard)) = self.active.take() {
            if let Err(err) = write_profile(&path, &guard) {
                eprintln!("trace: failed to write {}: {err}", path.display());
            }
        }
    }
}

/// Serializes the collector's journal as chrome-trace JSON to `path`.
fn write_profile(path: &std::path::Path, guard: &obs::InstallGuard) -> std::io::Result<()> {
    let json = guard.collector().chrome_trace();
    let dropped = guard.collector().journal_dropped();
    std::fs::write(path, json)?;
    if dropped > 0 {
        eprintln!("trace: {dropped} events dropped under journal contention");
    }
    println!("wrote {}", path.display());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats_percent() {
        assert_eq!(pct(0.015), "1.50%");
    }

    #[test]
    fn pick_respects_scale() {
        // Cannot portably set env vars in parallel tests; just check the
        // quick path (CI never sets SPECTROAI_FULL).
        if !full_scale() {
            assert_eq!(pick(1, 2), 1);
        }
    }

    #[test]
    fn experiments_dir_is_creatable() {
        let dir = experiments_dir();
        assert!(dir.exists());
    }
}
