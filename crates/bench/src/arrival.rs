//! Open-loop arrival processes for load generation.
//!
//! A closed-loop driver (submit, wait, submit again) can never overload
//! the system it measures: its arrival rate degrades in lock-step with
//! service latency, hiding queueing collapse. An *open-loop* process
//! generates arrival timestamps independently of completions — the
//! workload keeps arriving at the scheduled rate whether or not the
//! server keeps up, which is what exposes backpressure, deadline misses
//! and admission-control behaviour.
//!
//! Three seeded, fully deterministic processes are provided:
//!
//! * [`ArrivalProcess::poisson`] — memoryless arrivals with exponential
//!   interarrival gaps, the classic M/·/· driver;
//! * [`ArrivalProcess::bursty`] — a two-state Markov-modulated Poisson
//!   process alternating quiet and burst phases (geometric phase
//!   lengths), modelling reaction events that bunch measurements;
//! * [`ArrivalProcess::diurnal`] — a sinusoidally rate-modulated Poisson
//!   process, modelling slow load swings across a campaign (the
//!   "diurnal" pattern compressed onto a bench-scale period).
//!
//! All timestamps are in virtual microseconds from the process start;
//! drivers map them onto a wall clock (or a simulated tick) themselves,
//! so the process stays usable from deterministic tests.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// Which modulation the process applies on top of Poisson arrivals.
#[derive(Debug, Clone, PartialEq)]
enum Modulation {
    /// Constant rate.
    None,
    /// Two-state Markov-modulated Poisson process.
    Bursty {
        /// Rate multiplier while in the burst phase.
        burst_factor: f64,
        /// Mean arrivals per burst phase (geometric).
        mean_burst_len: f64,
        /// Mean arrivals per quiet phase (geometric).
        mean_quiet_len: f64,
        /// Whether the process is currently in a burst phase.
        in_burst: bool,
        /// Arrivals remaining in the current phase.
        remaining_in_phase: u64,
    },
    /// Sinusoidal rate modulation with the given period.
    Diurnal {
        /// Peak-rate multiplier at the top of the cycle (>= 1).
        peak_factor: f64,
        /// Cycle period in virtual microseconds.
        period_us: f64,
    },
}

/// A seeded open-loop arrival process yielding monotone virtual
/// timestamps (microseconds since process start).
///
/// Implements [`Iterator`] over arrival timestamps; the stream is
/// infinite, so bound it with `.take(n)` or [`ArrivalProcess::schedule`].
#[derive(Debug, Clone)]
pub struct ArrivalProcess {
    rng: ChaCha8Rng,
    /// Base arrival rate in arrivals per virtual second.
    base_rate_per_sec: f64,
    modulation: Modulation,
    /// Virtual clock: timestamp of the most recent arrival.
    clock_us: f64,
    arrivals: u64,
}

impl ArrivalProcess {
    /// A homogeneous Poisson process at `rate_per_sec` arrivals per
    /// virtual second. Rates are clamped to a tiny positive floor so a
    /// zero rate cannot stall the iterator forever.
    pub fn poisson(seed: u64, rate_per_sec: f64) -> Self {
        Self {
            rng: ChaCha8Rng::seed_from_u64(seed),
            base_rate_per_sec: rate_per_sec.max(1e-9),
            modulation: Modulation::None,
            clock_us: 0.0,
            arrivals: 0,
        }
    }

    /// A two-state Markov-modulated Poisson process: quiet phases at
    /// `rate_per_sec`, burst phases at `rate_per_sec * burst_factor`,
    /// with geometrically distributed phase lengths of the given means
    /// (in arrivals). Starts quiet.
    pub fn bursty(
        seed: u64,
        rate_per_sec: f64,
        burst_factor: f64,
        mean_burst_len: f64,
        mean_quiet_len: f64,
    ) -> Self {
        Self {
            rng: ChaCha8Rng::seed_from_u64(seed),
            base_rate_per_sec: rate_per_sec.max(1e-9),
            modulation: Modulation::Bursty {
                burst_factor: burst_factor.max(1.0),
                mean_burst_len: mean_burst_len.max(1.0),
                mean_quiet_len: mean_quiet_len.max(1.0),
                in_burst: false,
                remaining_in_phase: 0,
            },
            clock_us: 0.0,
            arrivals: 0,
        }
    }

    /// A sinusoidally rate-modulated Poisson process: the instantaneous
    /// rate swings between `rate_per_sec` (trough) and
    /// `rate_per_sec * peak_factor` (crest) over `period_us` virtual
    /// microseconds.
    pub fn diurnal(seed: u64, rate_per_sec: f64, peak_factor: f64, period_us: f64) -> Self {
        Self {
            rng: ChaCha8Rng::seed_from_u64(seed),
            base_rate_per_sec: rate_per_sec.max(1e-9),
            modulation: Modulation::Diurnal {
                peak_factor: peak_factor.max(1.0),
                period_us: period_us.max(1.0),
            },
            clock_us: 0.0,
            arrivals: 0,
        }
    }

    /// Arrivals generated so far.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Virtual timestamp of the most recent arrival (µs).
    pub fn clock_us(&self) -> f64 {
        self.clock_us
    }

    /// The instantaneous rate (arrivals per virtual second) at the
    /// current clock, after modulation.
    pub fn current_rate_per_sec(&mut self) -> f64 {
        match &mut self.modulation {
            Modulation::None => self.base_rate_per_sec,
            Modulation::Bursty {
                burst_factor,
                in_burst,
                ..
            } => {
                if *in_burst {
                    self.base_rate_per_sec * *burst_factor
                } else {
                    self.base_rate_per_sec
                }
            }
            Modulation::Diurnal {
                peak_factor,
                period_us,
            } => {
                let phase = (self.clock_us / *period_us) * std::f64::consts::TAU;
                let swing = (1.0 - phase.cos()) / 2.0; // 0 at trough, 1 at crest
                self.base_rate_per_sec * (1.0 + (*peak_factor - 1.0) * swing)
            }
        }
    }

    /// Advances the process and returns the next arrival's virtual
    /// timestamp in microseconds. Timestamps are strictly increasing.
    pub fn next_arrival_us(&mut self) -> f64 {
        self.advance_phase();
        let rate = self.current_rate_per_sec();
        // Exponential gap via inverse transform; 1 - U keeps the argument
        // in (0, 1] so ln() stays finite.
        let u: f64 = self.rng.gen();
        let gap_secs = -(1.0 - u).ln() / rate;
        self.clock_us += (gap_secs * 1e6).max(1e-3);
        self.arrivals += 1;
        self.clock_us
    }

    /// The first `n` arrival timestamps (µs), as a schedule a driver can
    /// replay against a wall clock.
    pub fn schedule(&mut self, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.next_arrival_us()).collect()
    }

    /// For the bursty modulation: draw a new phase when the current one
    /// is exhausted.
    fn advance_phase(&mut self) {
        if let Modulation::Bursty {
            mean_burst_len,
            mean_quiet_len,
            in_burst,
            remaining_in_phase,
            ..
        } = &mut self.modulation
        {
            if *remaining_in_phase == 0 {
                *in_burst = !*in_burst;
                let mean = if *in_burst {
                    *mean_burst_len
                } else {
                    *mean_quiet_len
                };
                // Geometric phase length via inverse transform, >= 1.
                let u: f64 = self.rng.gen();
                let len = (-(1.0 - u).ln() * mean).ceil();
                *remaining_in_phase = if len.is_finite() && len >= 1.0 {
                    len as u64
                } else {
                    1
                };
            }
            *remaining_in_phase -= 1;
        }
    }
}

impl Iterator for ArrivalProcess {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        Some(self.next_arrival_us())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_is_seed_deterministic() {
        let a = ArrivalProcess::poisson(7, 1000.0).schedule(100);
        let b = ArrivalProcess::poisson(7, 1000.0).schedule(100);
        let c = ArrivalProcess::poisson(8, 1000.0).schedule(100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn timestamps_strictly_increase() {
        for process in [
            ArrivalProcess::poisson(1, 5000.0),
            ArrivalProcess::bursty(2, 2000.0, 10.0, 20.0, 50.0),
            ArrivalProcess::diurnal(3, 1000.0, 4.0, 50_000.0),
        ] {
            let mut process = process;
            let mut last = 0.0;
            for _ in 0..500 {
                let t = process.next_arrival_us();
                assert!(t > last, "non-monotone arrival {t} after {last}");
                assert!(t.is_finite());
                last = t;
            }
            assert_eq!(process.arrivals(), 500);
        }
    }

    #[test]
    fn poisson_mean_rate_is_close() {
        let mut process = ArrivalProcess::poisson(11, 1000.0);
        let schedule = process.schedule(20_000);
        let elapsed_secs = schedule.last().copied().unwrap_or(0.0) / 1e6;
        let rate = schedule.len() as f64 / elapsed_secs;
        assert!(
            (rate - 1000.0).abs() / 1000.0 < 0.05,
            "empirical rate {rate}"
        );
    }

    #[test]
    fn bursty_has_higher_variance_than_poisson() {
        let cv2 = |schedule: &[f64]| {
            let gaps: Vec<f64> = schedule.windows(2).map(|w| w[1] - w[0]).collect();
            let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
            let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
            var / (mean * mean)
        };
        let poisson = ArrivalProcess::poisson(5, 1000.0).schedule(20_000);
        let bursty = ArrivalProcess::bursty(5, 1000.0, 20.0, 50.0, 50.0).schedule(20_000);
        let (p, b) = (cv2(&poisson), cv2(&bursty));
        // Poisson gaps have CV^2 ~ 1; the MMPP must be over-dispersed.
        assert!((p - 1.0).abs() < 0.2, "poisson cv^2 {p}");
        assert!(b > 1.5 * p, "bursty cv^2 {b} vs poisson {p}");
    }

    #[test]
    fn diurnal_rate_swings_across_the_period() {
        let mut process = ArrivalProcess::diurnal(9, 1000.0, 5.0, 1_000_000.0);
        // At clock 0 (trough) the rate is the base rate.
        assert!((process.current_rate_per_sec() - 1000.0).abs() < 1e-9);
        // Walk the clock to mid-period: the rate must be near the peak.
        while process.clock_us() < 500_000.0 {
            process.next_arrival_us();
        }
        let mid = process.current_rate_per_sec();
        assert!(mid > 4500.0, "mid-period rate {mid}");
    }

    #[test]
    fn iterator_and_schedule_agree() {
        let from_iter: Vec<f64> = ArrivalProcess::poisson(13, 700.0).take(50).collect();
        let from_schedule = ArrivalProcess::poisson(13, 700.0).schedule(50);
        assert_eq!(from_iter, from_schedule);
    }
}
