//! Table 2 regenerated as a Criterion benchmark: the analytical platform
//! model evaluated for the four Jetson targets, plus the cost of deriving
//! the workload from a freshly built Table 1 network.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ms_sim::campaign::MS_TASK_SUBSTANCES;
use platform::{estimate, Device, Workload};
use spectroai::pipeline::ms::{ActivationChoice, MsPipeline};

fn platform_estimates(c: &mut Criterion) {
    let network = MsPipeline::table1_spec(397, MS_TASK_SUBSTANCES.len(), ActivationChoice::paper_best())
        .build(0)
        .expect("network");
    let workload = Workload::from_network("table1", &network);

    let mut group = c.benchmark_group("table2_model");
    for device in Device::jetson_presets() {
        let label = device.name.replace([' ', '(', ')'], "_");
        group.bench_function(label, |b| {
            b.iter(|| black_box(estimate(black_box(&device), black_box(&workload), 21_600)))
        });
    }
    group.finish();

    c.bench_function("workload_from_network", |b| {
        b.iter(|| black_box(Workload::from_network("table1", black_box(&network))))
    });
}

fn network_build(c: &mut Criterion) {
    c.bench_function("table1_network_build", |b| {
        b.iter(|| {
            let spec = MsPipeline::table1_spec(
                397,
                MS_TASK_SUBSTANCES.len(),
                ActivationChoice::paper_best(),
            );
            black_box(spec.build(0).expect("build"))
        })
    });
}

criterion_group!(benches, platform_estimates, network_build);
criterion_main!(benches);
