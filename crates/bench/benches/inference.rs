//! Inference-latency benchmarks backing the paper's §III.B.3 timing
//! claims: the CNN "takes only 0.9 ms for predicting a single spectrum
//! ... and is therefore more than 1000 times faster than an IHM
//! analysis"; the LSTM "prediction time ... is still very low at
//! 1.05 ms". Our Rust inference is faster than Keras dispatch, but the
//! CNN ≪ LSTM ≪ IHM ordering and the >1000× CNN-vs-IHM gap are the
//! reproduced shape. Also times the MS Table 1 network (Table 2 input).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use chem::nmr::lithiation_components;
use chemometrics::ihm::IhmAnalyzer;
use ms_sim::campaign::MS_TASK_SUBSTANCES;
use nmr_sim::experiment::{ExperimentConfig, FlowReactorExperiment};
use spectroai::pipeline::ms::{ActivationChoice, MsPipeline};
use spectroai::pipeline::nmr::NmrPipeline;

fn nmr_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("nmr_inference");
    group.sample_size(20);

    // One experimental spectrum as the common input.
    let run = FlowReactorExperiment::new(3, ExperimentConfig::default())
        .acquire()
        .expect("acquire");
    let spectrum = &run.spectra[150];
    let input: Vec<f32> = spectrum.to_f32();

    let mut cnn = NmrPipeline::cnn_spec().build(1).expect("cnn");
    group.bench_function("cnn_single_spectrum", |b| {
        b.iter(|| black_box(cnn.predict(black_box(&input))))
    });

    let mut lstm = NmrPipeline::lstm_spec(5).build(1).expect("lstm");
    let window: Vec<f32> = (145..150)
        .flat_map(|i| run.spectra[i].to_f32())
        .collect();
    group.bench_function("lstm_five_step_window", |b| {
        b.iter(|| black_box(lstm.predict(black_box(&window))))
    });

    let analyzer =
        IhmAnalyzer::new(lithiation_components(), *spectrum.axis()).expect("analyzer");
    group.sample_size(10);
    group.bench_function("ihm_single_spectrum", |b| {
        b.iter(|| black_box(analyzer.fit(black_box(spectrum)).expect("fit")))
    });
    group.finish();
}

fn ms_network(c: &mut Criterion) {
    let mut group = c.benchmark_group("ms_inference");
    group.sample_size(30);
    let mut net = MsPipeline::table1_spec(397, MS_TASK_SUBSTANCES.len(), ActivationChoice::paper_best())
        .build(1)
        .expect("table1 network");
    let input = vec![0.05f32; 397];
    group.bench_function("table1_single_spectrum", |b| {
        b.iter(|| black_box(net.predict(black_box(&input))))
    });
    group.finish();
}

criterion_group!(benches, nmr_models, ms_network);
criterion_main!(benches);
