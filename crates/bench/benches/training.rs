//! Training-step costs of the three network families — the practical
//! budget behind every accuracy figure (Figures 5–7 retrain the Table 1
//! CNN up to eight times; §III.B trains the NMR CNN for up to 400
//! epochs).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use ms_sim::campaign::MS_TASK_SUBSTANCES;
use neural::Loss;
use spectroai::pipeline::ms::{ActivationChoice, MsPipeline};
use spectroai::pipeline::nmr::NmrPipeline;

fn train_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step");
    group.sample_size(20);

    // MS Table 1 network: one forward+backward on a 397-point spectrum.
    let mut ms_net =
        MsPipeline::table1_spec(397, MS_TASK_SUBSTANCES.len(), ActivationChoice::paper_best())
            .build(1)
            .expect("ms net");
    let ms_input = vec![0.05f32; 397];
    let ms_target = vec![0.125f32; 8];
    group.bench_function("ms_table1_fwd_bwd", |b| {
        b.iter(|| {
            ms_net.zero_grads();
            black_box(ms_net.train_step(black_box(&ms_input), &ms_target, Loss::Mae))
        })
    });

    // NMR CNN: one forward+backward on a 1700-point spectrum.
    let mut cnn = NmrPipeline::cnn_spec().build(1).expect("cnn");
    let cnn_input = vec![0.1f32; 1700];
    let cnn_target = vec![0.3f32; 4];
    group.bench_function("nmr_cnn_fwd_bwd", |b| {
        b.iter(|| {
            cnn.zero_grads();
            black_box(cnn.train_step(black_box(&cnn_input), &cnn_target, Loss::Mse))
        })
    });

    // NMR LSTM: one forward+backward on a 5x1700 window.
    let mut lstm = NmrPipeline::lstm_spec(5).build(1).expect("lstm");
    let lstm_input = vec![0.1f32; 5 * 1700];
    let lstm_target = vec![0.3f32; 4];
    group.sample_size(10);
    group.bench_function("nmr_lstm_fwd_bwd", |b| {
        b.iter(|| {
            lstm.zero_grads();
            black_box(lstm.train_step(black_box(&lstm_input), &lstm_target, Loss::Mse))
        })
    });
    group.finish();
}

criterion_group!(benches, train_steps);
criterion_main!(benches);
