//! Throughput of the data generators: the paper's claim that "a
//! sufficient number of simulated and labelled measurement series can be
//! generated in minutes" (Tool 3, §III.A.1) and the NMR augmentation
//! that enhances 300 spectra "to 300.000 spectra" (§III.B.1, Figure 8).

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use chem::fragmentation::GasLibrary;
use chem::Mixture;
use ms_sim::ideal::IdealSpectrumGenerator;
use ms_sim::instrument::{default_axis, nominal_instrument};
use ms_sim::prototype::MmsPrototype;
use ms_sim::simulate::TrainingSimulator;
use nmr_sim::augment::{AugmentationConfig, SpectraAugmenter};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn ms_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("ms_simulators");
    group.sample_size(30);

    let generator = IdealSpectrumGenerator::new(GasLibrary::standard());
    let mixture = Mixture::from_fractions(vec![
        ("N2".into(), 0.5),
        ("O2".into(), 0.2),
        ("CO2".into(), 0.2),
        ("Ar".into(), 0.1),
    ])
    .expect("mixture");
    group.bench_function("tool1_ideal_line_spectrum", |b| {
        b.iter(|| black_box(generator.generate(black_box(&mixture)).expect("ideal")))
    });

    let simulator = TrainingSimulator::new(
        nominal_instrument(),
        GasLibrary::standard(),
        vec!["N2".into(), "O2".into(), "CO2".into(), "Ar".into()],
        default_axis(),
    )
    .expect("simulator");
    let mut rng = ChaCha8Rng::seed_from_u64(1);
    group.bench_function("tool3_simulated_measurement", |b| {
        b.iter(|| {
            black_box(
                simulator
                    .simulate_measurement(black_box(&mixture), &mut rng)
                    .expect("measurement"),
            )
        })
    });

    let mut prototype = MmsPrototype::new(2);
    group.bench_function("prototype_measurement", |b| {
        b.iter(|| black_box(prototype.measure(black_box(&mixture)).expect("measure")))
    });
    group.finish();
}

fn nmr_generators(c: &mut Criterion) {
    let mut group = c.benchmark_group("nmr_simulators");
    group.sample_size(20);

    let augmenter = SpectraAugmenter::new(AugmentationConfig::default()).expect("augmenter");
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let concentrations = [0.3, 0.4, 0.2, 0.1];
    group.bench_function("augment_single_spectrum", |b| {
        b.iter(|| {
            black_box(
                augmenter
                    .synthesize(black_box(&concentrations), &mut rng)
                    .expect("synthesize"),
            )
        })
    });

    group.bench_function("augment_batch_of_100", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(augmenter.generate(100, seed).expect("generate"))
        })
    });
    group.finish();
}

criterion_group!(benches, ms_generators, nmr_generators);
criterion_main!(benches);
