//! `spectro-ai` — ANN pipelines for mass spectrometry and NMR
//! spectroscopy with simulated-spectra data augmentation.
//!
//! This crate is the public API of the workspace: a Rust reproduction of
//! *Fricke et al., "Artificial Intelligence for Mass Spectrometry and
//! Nuclear Magnetic Resonance Spectroscopy Using a Novel Data
//! Augmentation Method"* (IEEE TETC 2021). It composes the substrate
//! crates into the paper's two end-to-end flows:
//!
//! * [`pipeline::ms`] — the miniaturized-mass-spectrometer flow: measure
//!   a few calibration series on the (simulated) prototype, estimate an
//!   instrument simulator (Tool 2), generate labelled synthetic spectra
//!   (Tools 1+3), train a CNN (Tool 4) and evaluate it on fresh measured
//!   data;
//! * [`pipeline::nmr`] — the NMR flow: acquire 300 flow-reactor spectra,
//!   augment them through the parametric hard models, train the paper's
//!   10 532-parameter CNN and 221 956-parameter LSTM, and benchmark both
//!   against Indirect Hard Modelling;
//! * [`eval`] — quality criteria, best-network selection and embedded
//!   export;
//! * [`provenance`] — recording every pipeline artifact in the
//!   [`datastore`] with full parent lineage;
//! * [`recovery`] — a retry/backoff stage runner and graceful
//!   degradation for unattended pipeline runs (see
//!   [`pipeline::ms::MsPipeline::run_with_recovery`]).
//!
//! # Quickstart
//!
//! Train a small MS network end-to-end on a coarse axis (see
//! `examples/quickstart.rs` for the narrated version):
//!
//! ```
//! use ms_sim::prototype::MmsPrototype;
//! use spectroai::pipeline::ms::{MsPipeline, MsPipelineConfig};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let config = MsPipelineConfig::quick_test();
//! let mut prototype = MmsPrototype::new(7);
//! let report = MsPipeline::new(config)?.run(&mut prototype)?;
//! assert!(report.validation_mae < 0.20); // fractions, not percent
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod eval;
pub mod pipeline;
pub mod provenance;
pub mod recovery;

mod error;

pub use error::PipelineError;

// Re-export the substrate crates so downstream users need only one
// dependency.
pub use chem;
pub use chemometrics;
pub use datastore;
pub use ms_sim;
pub use neural;
pub use nmr_sim;
pub use platform;
pub use spectrum;
