//! Deploy stage: publish a trained network into the datastore for serving.
//!
//! The paper's Tool 4 ends with "a tool to export the desired ANN for use
//! on embedded platforms". This stage is the toolflow side of that hand-
//! off: it validates the trained network against its spec, wraps it into
//! a [`neural::export::ExportedNetwork`] artifact and inserts it into a
//! [`datastore::Store`] collection with `model` / `model_version`
//! metadata — exactly the layout the `serve` crate's
//! `ModelRegistry::load_from_store` consumes. Provenance parents (the
//! training run, the dataset) ride along via [`Metadata`] lineage.

use datastore::{DocumentId, Metadata, Store};
use neural::export::ExportedNetwork;
use neural::spec::NetworkSpec;
use neural::Network;

use crate::PipelineError;

/// Metadata parameter naming the deployed model (matches
/// `serve::ModelRegistry`'s expectation).
pub const MODEL_PARAM: &str = "model";
/// Metadata parameter carrying the deployed model's version.
pub const VERSION_PARAM: &str = "model_version";

/// Receipt for one deployed model artifact.
#[derive(Debug, Clone, PartialEq)]
pub struct DeployedModel {
    /// The datastore document holding the artifact.
    pub document: DocumentId,
    /// Deployed model name.
    pub name: String,
    /// Deployed model version.
    pub version: u32,
    /// Scalar parameters in the artifact.
    pub parameter_count: usize,
}

/// Validates `network` against `spec`, exports it and inserts the
/// artifact into `collection`, versioned one past the newest deployment
/// of the same name already present.
///
/// # Errors
///
/// Returns [`PipelineError::Neural`] if the exported weights do not fit
/// the spec, or [`PipelineError::Store`] if the insert fails.
pub fn deploy_network(
    store: &Store,
    collection: &str,
    name: &str,
    spec: NetworkSpec,
    network: &Network,
    parents: impl IntoIterator<Item = DocumentId>,
) -> Result<DeployedModel, PipelineError> {
    let exported = ExportedNetwork::from_network(spec, network, name);
    exported.validate()?;
    let version = store
        .collection(collection)
        .iter()
        .filter(|d| d.metadata.params.get(MODEL_PARAM).map(String::as_str) == Some(name))
        .filter_map(|d| d.metadata.params.get(VERSION_PARAM)?.parse::<u32>().ok())
        .max()
        .map_or(1, |v| v + 1);
    let metadata = Metadata::created_by("tool-4-deploy")
        .with_param(MODEL_PARAM, name)
        .with_param(VERSION_PARAM, version)
        .with_param("parameters", exported.parameter_count())
        .with_parents(parents);
    let document = store.insert(collection, metadata, &exported)?;
    Ok(DeployedModel {
        document,
        name: name.to_string(),
        version,
        parameter_count: exported.parameter_count(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use neural::spec::LayerSpec;
    use neural::Activation;

    fn spec() -> NetworkSpec {
        NetworkSpec::new(6).layer(LayerSpec::Dense {
            units: 2,
            activation: Activation::Softmax,
        })
    }

    #[test]
    fn deploy_versions_increment_per_name() {
        let store = Store::in_memory();
        let net = spec().build(1).unwrap();
        let first = deploy_network(&store, "deployed", "ms", spec(), &net, []).unwrap();
        let second = deploy_network(&store, "deployed", "ms", spec(), &net, []).unwrap();
        let other = deploy_network(&store, "deployed", "nmr", spec(), &net, []).unwrap();
        assert_eq!(first.version, 1);
        assert_eq!(second.version, 2);
        assert_eq!(other.version, 1);
        assert_eq!(first.parameter_count, 6 * 2 + 2);
    }

    #[test]
    fn deployed_artifact_roundtrips_through_store() {
        let store = Store::in_memory();
        let mut net = spec().build(5).unwrap();
        let receipt = deploy_network(&store, "deployed", "ms", spec(), &net, []).unwrap();
        let exported: ExportedNetwork = store.get_payload(receipt.document).unwrap();
        let mut restored = exported.instantiate().unwrap();
        let x = [0.1, 0.2, 0.3, 0.4, 0.5, 0.6];
        assert_eq!(net.predict(&x), restored.predict(&x));
    }

    #[test]
    fn deploy_records_provenance_parents() {
        let store = Store::in_memory();
        let parent = store
            .insert("runs", Metadata::created_by("tool-4"), &serde_json::json!({}))
            .unwrap();
        let net = spec().build(1).unwrap();
        let receipt = deploy_network(&store, "deployed", "ms", spec(), &net, [parent]).unwrap();
        assert_eq!(store.lineage(receipt.document).unwrap(), vec![receipt.document, parent]);
    }
}
