//! The mass-spectrometry pipeline (paper §III.A, Figure 3).
//!
//! One [`MsPipeline::run`] performs the complete toolflow:
//!
//! 1. a calibration campaign on the prototype (14 known mixtures ×
//!    `calibration_samples_per_mixture` measurements);
//! 2. Tool 2 — instrument characterization from those measurements;
//! 3. Tools 1+3 — generation of `training_spectra` labelled simulated
//!    spectra at random compositions;
//! 4. Tool 4 — training the CNN with MAE loss on an 80/20 split;
//! 5. evaluation on the held-out *simulated* validation data;
//! 6. evaluation on a fresh *measured* campaign (the sim-to-real gap).

use std::sync::Arc;

use chem::fragmentation::GasLibrary;
use ms_sim::campaign::{run_calibration_campaign, run_evaluation_campaign, MS_TASK_SUBSTANCES};
use ms_sim::characterize::{CharacterizationReport, Characterizer};
use ms_sim::prototype::MmsPrototype;
use ms_sim::simulate::{LabeledSpectra, TrainingSimulator};
use neural::guard::{GuardConfig, GuardedTrainer, RecoveryEvent};
use neural::optim::OptimizerSpec;
use neural::spec::{LayerSpec, NetworkSpec};
use neural::train::{Dataset, TrainConfig, Trainer};
use neural::{Activation, Loss, Network};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use spectrum::UniformAxis;

use crate::recovery::StageRunner;
use crate::PipelineError;

/// The three activation choices the paper sweeps in Figure 5: hidden
/// convolutional layers, the final convolutional layer (Table 1 layer 6),
/// and the dense output layer (layer 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ActivationChoice {
    /// Hidden convolutional layers (paper: ReLU vs SELU).
    pub hidden: Activation,
    /// Final convolutional layer (paper: softmax vs linear).
    pub final_conv: Activation,
    /// Output dense layer (paper: softmax vs linear).
    pub output: Activation,
}

impl ActivationChoice {
    /// The paper's best configuration (Table 1): SELU hidden, softmax on
    /// both output stages.
    pub fn paper_best() -> Self {
        Self {
            hidden: Activation::Selu,
            final_conv: Activation::Softmax,
            output: Activation::Softmax,
        }
    }

    /// The paper's initial configuration: linear activations on layers
    /// 6 and 8 (§III.A.2, 0.14 % sim / 3.15 % measured).
    pub fn paper_initial() -> Self {
        Self {
            hidden: Activation::Selu,
            final_conv: Activation::Linear,
            output: Activation::Linear,
        }
    }

    /// All eight Figure 5 variants:
    /// {ReLU, SELU} × {softmax, linear} × {softmax, linear}.
    pub fn figure5_grid() -> Vec<ActivationChoice> {
        let mut out = Vec::with_capacity(8);
        for hidden in [Activation::Relu, Activation::Selu] {
            for final_conv in [Activation::Softmax, Activation::Linear] {
                for output in [Activation::Softmax, Activation::Linear] {
                    out.push(ActivationChoice {
                        hidden,
                        final_conv,
                        output,
                    });
                }
            }
        }
        out
    }

    /// The Figure 5 x-axis label, e.g. `"selu sftm/sftm"`.
    pub fn label(&self) -> String {
        format!(
            "{} {}/{}",
            self.hidden.short_name(),
            self.final_conv.short_name(),
            self.output.short_name()
        )
    }
}

/// Configuration of one MS pipeline run.
#[derive(Debug, Clone)]
pub struct MsPipelineConfig {
    /// Measurement-task substances (network output order).
    pub substances: Vec<String>,
    /// Spectral axis (defaults to m/z 1–100 step 0.25 → 397 inputs).
    pub axis: UniformAxis,
    /// Calibration measurements per mixture for Tool 2 (the paper sweeps
    /// 10–150 in Figure 6 and used ~200 for the final model).
    pub calibration_samples_per_mixture: usize,
    /// Simulated training spectra to generate (paper: 100 000).
    pub training_spectra: usize,
    /// Measured evaluation samples per mixture.
    pub evaluation_samples_per_mixture: usize,
    /// Activation functions of the Table 1 stack.
    pub activations: ActivationChoice,
    /// Training epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Stop training once the simulated-validation loss reaches this
    /// target (the paper's quality gate: "a mean error of no more than
    /// 0.005 on the validation data").
    pub target_validation_mae: Option<f32>,
    /// Master seed for data generation, initialization and shuffling.
    pub seed: u64,
}

impl Default for MsPipelineConfig {
    fn default() -> Self {
        Self {
            substances: MS_TASK_SUBSTANCES.iter().map(|&s| s.to_string()).collect(),
            axis: ms_sim::instrument::default_axis(),
            calibration_samples_per_mixture: 25,
            training_spectra: 2_000,
            evaluation_samples_per_mixture: 10,
            activations: ActivationChoice::paper_best(),
            epochs: 4,
            batch_size: 32,
            learning_rate: 1e-3,
            target_validation_mae: None,
            seed: 42,
        }
    }
}

impl MsPipelineConfig {
    /// A CI-scale configuration: coarse axis (m/z step 0.5 → 199 inputs),
    /// few spectra, few epochs. Finishes in seconds; accuracy targets are
    /// loose.
    pub fn quick_test() -> Self {
        Self {
            axis: UniformAxis::from_range(1.0, 100.0, 0.5).expect("valid axis"),
            calibration_samples_per_mixture: 5,
            training_spectra: 300,
            evaluation_samples_per_mixture: 3,
            epochs: 3,
            ..Self::default()
        }
    }

    /// Paper-scale settings (100 000 training spectra, more epochs).
    /// Used by the harness binaries under `SPECTROAI_FULL=1`.
    pub fn paper_scale() -> Self {
        Self {
            calibration_samples_per_mixture: 200,
            training_spectra: 100_000,
            evaluation_samples_per_mixture: 20,
            epochs: 10,
            ..Self::default()
        }
    }
}

/// The outcome of one MS pipeline run.
#[derive(Debug)]
pub struct MsRunReport {
    /// Tool 2 diagnostics and the estimated instrument.
    pub characterization: CharacterizationReport,
    /// The built topology.
    pub spec: NetworkSpec,
    /// The trained network (best-validation weights restored).
    pub network: Network,
    /// Training history.
    pub history: neural::train::History,
    /// Mean absolute error on the held-out *simulated* validation set
    /// (fractions: 0.005 = 0.5 %).
    pub validation_mae: f64,
    /// Per-substance MAE on the simulated validation set.
    pub per_substance_validation: Vec<f64>,
    /// Mean absolute error on freshly *measured* prototype data.
    pub measured_mae: f64,
    /// Per-substance MAE on measured data (Figures 5–7 bars).
    pub per_substance_measured: Vec<f64>,
    /// Substance order of the per-substance vectors.
    pub substances: Vec<String>,
    /// Calibration samples per mixture actually used. Equals the
    /// configured count unless
    /// [`MsPipeline::run_with_recovery`] degraded the campaign after
    /// repeated characterization failures.
    pub calibration_samples_used: usize,
    /// Training-guard rollbacks performed during Tool 4 (always empty
    /// for the unguarded [`MsPipeline::run`]).
    pub training_recovery: Vec<RecoveryEvent>,
}

/// The end-to-end MS pipeline.
#[derive(Debug, Clone)]
pub struct MsPipeline {
    config: MsPipelineConfig,
}

impl MsPipeline {
    /// Smallest calibration campaign (samples per mixture) that
    /// [`MsPipeline::run_with_recovery`] degrades to before giving up.
    pub const MIN_CALIBRATION_SAMPLES: usize = 2;

    /// Creates a pipeline after validating the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::InvalidConfig`] for empty substance lists
    /// or zero-sized stages.
    pub fn new(config: MsPipelineConfig) -> Result<Self, PipelineError> {
        if config.substances.is_empty() {
            return Err(PipelineError::InvalidConfig("no substances".into()));
        }
        for (label, v) in [
            ("calibration samples", config.calibration_samples_per_mixture),
            ("training spectra", config.training_spectra),
            ("evaluation samples", config.evaluation_samples_per_mixture),
            ("epochs", config.epochs),
            ("batch size", config.batch_size),
        ] {
            if v == 0 {
                return Err(PipelineError::InvalidConfig(format!("{label} is zero")));
            }
        }
        Ok(Self { config })
    }

    /// The configuration.
    pub fn config(&self) -> &MsPipelineConfig {
        &self.config
    }

    /// The paper's Table 1 topology for `input_len` spectral points and
    /// `outputs` substances, with the given activation choice.
    pub fn table1_spec(
        input_len: usize,
        outputs: usize,
        activations: ActivationChoice,
    ) -> NetworkSpec {
        NetworkSpec::new(input_len)
            .layer(LayerSpec::Reshape { channels: 1 })
            .layer(LayerSpec::Conv1d {
                filters: 25,
                kernel: 20,
                stride: 1,
                activation: activations.hidden,
            })
            .layer(LayerSpec::Conv1d {
                filters: 25,
                kernel: 20,
                stride: 3,
                activation: activations.hidden,
            })
            .layer(LayerSpec::Conv1d {
                filters: 25,
                kernel: 15,
                stride: 2,
                activation: activations.hidden,
            })
            .layer(LayerSpec::Conv1d {
                filters: 15,
                kernel: 15,
                stride: 4,
                activation: activations.final_conv,
            })
            .layer(LayerSpec::Flatten)
            .layer(LayerSpec::Dense {
                units: outputs,
                activation: activations.output,
            })
    }

    /// Runs Tools 1–4 end to end against `prototype` and evaluates the
    /// result on fresh measured data.
    ///
    /// # Errors
    ///
    /// Propagates toolchain, training and evaluation errors.
    pub fn run(&self, prototype: &mut MmsPrototype) -> Result<MsRunReport, PipelineError> {
        let _run_span = obs::span!("pipeline.ms.run");
        // 1. Calibration campaign (known mixtures, repeated measurements).
        let calibration = run_calibration_campaign(
            prototype,
            self.config.calibration_samples_per_mixture,
        )?;
        // Re-measure on the pipeline's axis if it differs from the
        // prototype's native one ("missing values would be interpolated
        // when the resolution was changed").
        let calibration: Vec<_> = calibration
            .into_iter()
            .map(|mut s| {
                if s.spectrum.axis() != &self.config.axis {
                    s.spectrum = s.spectrum.resampled(&self.config.axis);
                }
                s
            })
            .collect();

        // 2. Tool 2: estimate the instrument.
        let characterizer = Characterizer::new(GasLibrary::standard(), Some("He".into()));
        let characterization = characterizer.characterize(&calibration)?;

        // 3. Tools 1+3: labelled simulated training data.
        let simulator = TrainingSimulator::new(
            characterization.model.clone(),
            GasLibrary::standard(),
            self.config.substances.clone(),
            self.config.axis,
        )?;
        let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
        let simulated = simulator.generate_dataset(self.config.training_spectra, &mut rng)?;

        // 4. Tool 4: 80/20 split and training.
        let dataset = Dataset::new(simulated.inputs_f32(), simulated.labels_f32())?;
        let (train, validation) = dataset.split(0.8)?;
        let spec = Self::table1_spec(
            self.config.axis.len(),
            self.config.substances.len(),
            self.config.activations,
        );
        let mut network = spec.build(self.config.seed)?;
        let train_config = TrainConfig {
            epochs: self.config.epochs,
            batch_size: self.config.batch_size,
            optimizer: OptimizerSpec::Adam {
                lr: self.config.learning_rate,
            },
            loss: Loss::Mae,
            shuffle: true,
            seed: self.config.seed,
            restore_best: true,
            stop_at_val_loss: self.config.target_validation_mae,
        };
        let history = Trainer::new(train_config).fit(&mut network, &train, Some(&validation))?;

        // 5. Simulated-validation quality.
        let per_substance_validation = validation.per_output_mae(&mut network);
        let validation_mae = per_substance_validation.iter().sum::<f64>()
            / per_substance_validation.len() as f64;

        // 6. Fresh measured evaluation campaign.
        let measured =
            run_evaluation_campaign(prototype, self.config.evaluation_samples_per_mixture)?;
        let measured = self.resample_labeled(measured);
        let (measured_mae, per_substance_measured) =
            evaluate_on(&mut network, &measured)?;

        Ok(MsRunReport {
            characterization,
            spec,
            network,
            history,
            validation_mae,
            per_substance_validation,
            measured_mae,
            per_substance_measured,
            substances: self.config.substances.clone(),
            calibration_samples_used: self.config.calibration_samples_per_mixture,
            training_recovery: Vec::new(),
        })
    }

    /// Fault-tolerant variant of [`MsPipeline::run`]: every stage runs
    /// under `runner`'s retry/backoff policy, training runs under a
    /// divergence guard with checkpoint rollback, and a calibration +
    /// characterization stage that keeps failing across its whole retry
    /// budget degrades gracefully — the campaign is retried with half the
    /// samples per mixture (Figure 6's axis, floor of
    /// [`MsPipeline::MIN_CALIBRATION_SAMPLES`]) before giving up.
    ///
    /// If the runner carries a [`faultsim::FaultPlan`], it is shared with
    /// the training guard so NaN-batch injection exercises rollback.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Stage`] once a stage exhausts retries
    /// (and, for calibration, all degradation levels), or
    /// [`PipelineError::Neural`] if guarded training diverges beyond
    /// recovery.
    pub fn run_with_recovery(
        &self,
        prototype: &mut MmsPrototype,
        runner: &mut StageRunner,
    ) -> Result<MsRunReport, PipelineError> {
        // 1.+2. Calibration + characterization, with graceful degradation.
        let mut samples = self.config.calibration_samples_per_mixture;
        let (characterization, calibration_samples_used) = loop {
            let result = runner.run("calibration", || {
                let calibration = run_calibration_campaign(prototype, samples)?;
                let calibration: Vec<_> = calibration
                    .into_iter()
                    .map(|mut s| {
                        if s.spectrum.axis() != &self.config.axis {
                            s.spectrum = s.spectrum.resampled(&self.config.axis);
                        }
                        s
                    })
                    .collect();
                let characterizer =
                    Characterizer::new(GasLibrary::standard(), Some("He".into()));
                Ok(characterizer.characterize(&calibration)?)
            });
            match result {
                Ok(characterization) => break (characterization, samples),
                Err(err) => {
                    let halved = samples / 2;
                    if halved < Self::MIN_CALIBRATION_SAMPLES {
                        return Err(err);
                    }
                    samples = halved;
                }
            }
        };

        // 3. Simulated training data.
        let simulated = runner.run("simulate", || {
            let simulator = TrainingSimulator::new(
                characterization.model.clone(),
                GasLibrary::standard(),
                self.config.substances.clone(),
                self.config.axis,
            )?;
            let mut rng = ChaCha8Rng::seed_from_u64(self.config.seed);
            Ok(simulator.generate_dataset(self.config.training_spectra, &mut rng)?)
        })?;

        // 4. Dataset split and guarded training. A fresh network per
        // attempt so a retried stage starts from a clean slate.
        let (train, validation) = runner.run("build-dataset", || {
            let dataset = Dataset::new(simulated.inputs_f32(), simulated.labels_f32())?;
            Ok(dataset.split(0.8)?)
        })?;
        let spec = Self::table1_spec(
            self.config.axis.len(),
            self.config.substances.len(),
            self.config.activations,
        );
        let train_config = TrainConfig {
            epochs: self.config.epochs,
            batch_size: self.config.batch_size,
            optimizer: OptimizerSpec::Adam {
                lr: self.config.learning_rate,
            },
            loss: Loss::Mae,
            shuffle: true,
            seed: self.config.seed,
            restore_best: true,
            stop_at_val_loss: self.config.target_validation_mae,
        };
        let plan = runner.fault_plan().map(Arc::clone);
        let (mut network, outcome) = runner.run("train", || {
            let mut network = spec.build(self.config.seed)?;
            let mut trainer = GuardedTrainer::new(train_config, GuardConfig::default())?;
            if let Some(plan) = &plan {
                trainer = trainer.with_fault_plan(Arc::clone(plan));
            }
            let outcome = trainer.fit(&mut network, &train, Some(&validation))?;
            Ok((network, outcome))
        })?;

        // 5. Simulated-validation quality.
        let per_substance_validation = validation.per_output_mae(&mut network);
        let validation_mae = per_substance_validation.iter().sum::<f64>()
            / per_substance_validation.len() as f64;

        // 6. Measured evaluation campaign.
        let (measured_mae, per_substance_measured) = runner.run("evaluate", || {
            let measured = run_evaluation_campaign(
                prototype,
                self.config.evaluation_samples_per_mixture,
            )?;
            let measured = self.resample_labeled(measured);
            evaluate_on(&mut network, &measured)
        })?;

        Ok(MsRunReport {
            characterization,
            spec,
            network,
            history: outcome.history,
            validation_mae,
            per_substance_validation,
            measured_mae,
            per_substance_measured,
            substances: self.config.substances.clone(),
            calibration_samples_used,
            training_recovery: outcome.recovery,
        })
    }

    /// Re-samples a labelled set onto the pipeline axis if needed.
    fn resample_labeled(&self, mut data: LabeledSpectra) -> LabeledSpectra {
        if data.axis == self.config.axis {
            return data;
        }
        let src = data.axis;
        data.inputs = data
            .inputs
            .iter()
            .map(|row| spectrum::interp::resample(&src, row, &self.config.axis))
            .collect();
        data.axis = self.config.axis;
        data
    }
}

/// Evaluates a trained network on a labelled spectra set, returning the
/// overall and per-substance MAE.
///
/// # Errors
///
/// Returns [`PipelineError::Neural`] if the set is inconsistent with the
/// network shapes.
pub fn evaluate_on(
    network: &mut Network,
    data: &LabeledSpectra,
) -> Result<(f64, Vec<f64>), PipelineError> {
    let dataset = Dataset::new(data.inputs_f32(), data.labels_f32())?;
    let per_substance = dataset.per_output_mae(network);
    let overall = per_substance.iter().sum::<f64>() / per_substance.len() as f64;
    Ok((overall, per_substance))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure5_grid_has_eight_distinct_variants() {
        let grid = ActivationChoice::figure5_grid();
        assert_eq!(grid.len(), 8);
        for i in 0..8 {
            for j in (i + 1)..8 {
                assert_ne!(grid[i], grid[j]);
            }
        }
        assert!(grid.contains(&ActivationChoice::paper_best()));
    }

    #[test]
    fn labels_match_paper_abbreviations() {
        assert_eq!(ActivationChoice::paper_best().label(), "selu sftm/sftm");
        assert_eq!(ActivationChoice::paper_initial().label(), "selu lin/lin");
    }

    #[test]
    fn config_validation() {
        let mut config = MsPipelineConfig::quick_test();
        config.substances.clear();
        assert!(MsPipeline::new(config).is_err());
        let mut config = MsPipelineConfig::quick_test();
        config.epochs = 0;
        assert!(MsPipeline::new(config).is_err());
    }

    #[test]
    fn table1_spec_builds_on_both_axes() {
        // Paper axis.
        let spec = MsPipeline::table1_spec(397, 8, ActivationChoice::paper_best());
        assert!(spec.build(1).is_ok());
        // Quick-test axis.
        let spec = MsPipeline::table1_spec(199, 8, ActivationChoice::paper_best());
        let net = spec.build(1).unwrap();
        assert_eq!(net.output_len(), 8);
    }

    #[test]
    fn quick_pipeline_runs_end_to_end() {
        let config = MsPipelineConfig::quick_test();
        let mut prototype = MmsPrototype::new(5);
        let report = MsPipeline::new(config).unwrap().run(&mut prototype).unwrap();
        assert_eq!(report.substances.len(), 8);
        assert_eq!(report.per_substance_measured.len(), 8);
        assert!(report.validation_mae.is_finite());
        assert!(report.measured_mae.is_finite());
        // Even a quick run should learn something.
        assert!(report.validation_mae < 0.125, "validation {}", report.validation_mae);
        // And the sim-to-real gap should appear.
        assert!(report.measured_mae >= report.validation_mae * 0.8);
    }
}
