//! The paper's two end-to-end flows.

pub mod ms;
pub mod nmr;
