//! The paper's two end-to-end flows.

pub mod deploy;
pub mod ms;
pub mod nmr;
