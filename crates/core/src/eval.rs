//! Evaluation backend: quality criteria, best-network selection and
//! embedded export.
//!
//! "Backend tools help with the evaluation of the trained networks with
//! different training datasets, the selection of the best-performing
//! networks, based on selectable quality criteria and the export of
//! analysis data" (paper §III.A.2).

use neural::export::ExportedNetwork;
use neural::spec::NetworkSpec;
use neural::Network;
use serde::{Deserialize, Serialize};

use crate::PipelineError;

/// One evaluated candidate network.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluationReport {
    /// Candidate name (e.g. the Figure 5 activation label).
    pub name: String,
    /// Mean MAE over all outputs (fractions).
    pub overall_mae: f64,
    /// Per-output MAE.
    pub per_output_mae: Vec<f64>,
    /// Output (substance) names.
    pub outputs: Vec<String>,
}

impl EvaluationReport {
    /// Builds a report from per-output errors.
    ///
    /// # Panics
    ///
    /// Panics if `per_output_mae` and `outputs` differ in length or are
    /// empty.
    pub fn new(
        name: impl Into<String>,
        per_output_mae: Vec<f64>,
        outputs: Vec<String>,
    ) -> Self {
        assert_eq!(per_output_mae.len(), outputs.len(), "output count");
        assert!(!outputs.is_empty(), "at least one output");
        let overall = per_output_mae.iter().sum::<f64>() / per_output_mae.len() as f64;
        Self {
            name: name.into(),
            overall_mae: overall,
            per_output_mae,
            outputs,
        }
    }

    /// The worst single output error.
    pub fn worst_output_mae(&self) -> f64 {
        self.per_output_mae
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }
}

/// A selectable quality criterion for ranking candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum QualityCriterion {
    /// Rank by the mean error over outputs (the paper's default).
    MeanError,
    /// Rank by the worst per-output error (guards against one substance
    /// failing badly while the mean looks fine).
    WorstOutput,
}

impl QualityCriterion {
    /// The score of a report under this criterion (lower is better).
    pub fn score(&self, report: &EvaluationReport) -> f64 {
        match self {
            QualityCriterion::MeanError => report.overall_mae,
            QualityCriterion::WorstOutput => report.worst_output_mae(),
        }
    }
}

/// Selects the best candidate under `criterion`.
///
/// Returns `None` for an empty slice.
pub fn select_best(
    reports: &[EvaluationReport],
    criterion: QualityCriterion,
) -> Option<&EvaluationReport> {
    reports.iter().min_by(|a, b| {
        // total_cmp orders finite scores identically to partial_cmp and
        // stays panic-free if a score ever goes non-finite.
        criterion.score(a).total_cmp(&criterion.score(b))
    })
}

/// Checks a report against an acceptance threshold — the paper's initial
/// target was "a mean error of no more than 0.005 on the validation
/// data" (0.5 % absolute deviation).
pub fn meets_target(report: &EvaluationReport, max_mean_mae: f64) -> bool {
    report.overall_mae <= max_mean_mae
}

/// Exports a trained network for embedded deployment together with its
/// estimated footprint on a target device.
///
/// # Errors
///
/// Returns [`PipelineError::Neural`] on serialization failure.
pub fn export_for_embedded(
    spec: NetworkSpec,
    network: &Network,
    name: &str,
    device: &platform::Device,
) -> Result<EmbeddedArtifact, PipelineError> {
    let exported = ExportedNetwork::from_network(spec, network, name);
    let workload = platform::Workload::from_network(name, network);
    let per_sample = platform::estimate(device, &workload, 1);
    let json = exported.to_json()?;
    Ok(EmbeddedArtifact {
        exported,
        json_bytes: json.len(),
        device_name: device.name.clone(),
        seconds_per_inference: per_sample.seconds,
        energy_per_inference_joules: per_sample.energy_joules,
    })
}

/// A deployable artifact plus its estimated embedded footprint.
#[derive(Debug, Clone, PartialEq)]
pub struct EmbeddedArtifact {
    /// The serialized network.
    pub exported: ExportedNetwork,
    /// Size of the JSON artifact in bytes.
    pub json_bytes: usize,
    /// The target device name.
    pub device_name: String,
    /// Estimated latency per inference on the target.
    pub seconds_per_inference: f64,
    /// Estimated energy per inference on the target.
    pub energy_per_inference_joules: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use neural::spec::LayerSpec;
    use neural::Activation;

    fn report(name: &str, errors: &[f64]) -> EvaluationReport {
        EvaluationReport::new(
            name,
            errors.to_vec(),
            errors.iter().enumerate().map(|(i, _)| format!("s{i}")).collect(),
        )
    }

    #[test]
    fn overall_is_mean_of_outputs() {
        let r = report("a", &[0.01, 0.03]);
        assert!((r.overall_mae - 0.02).abs() < 1e-12);
        assert_eq!(r.worst_output_mae(), 0.03);
    }

    #[test]
    fn selection_by_mean_vs_worst_can_differ() {
        let candidates = vec![
            report("balanced", &[0.02, 0.02]),
            report("spiky", &[0.001, 0.035]),
        ];
        let by_mean = select_best(&candidates, QualityCriterion::MeanError).unwrap();
        assert_eq!(by_mean.name, "spiky"); // mean 0.018 < 0.02
        let by_worst = select_best(&candidates, QualityCriterion::WorstOutput).unwrap();
        assert_eq!(by_worst.name, "balanced"); // worst 0.02 < 0.035
    }

    #[test]
    fn empty_selection_is_none() {
        assert!(select_best(&[], QualityCriterion::MeanError).is_none());
    }

    #[test]
    fn target_check() {
        let r = report("a", &[0.004, 0.005]);
        assert!(meets_target(&r, 0.005));
        assert!(!meets_target(&r, 0.004));
    }

    #[test]
    fn embedded_export_roundtrip() {
        let spec = NetworkSpec::new(4).layer(LayerSpec::Dense {
            units: 2,
            activation: Activation::Softmax,
        });
        let net = spec.build(1).unwrap();
        let artifact =
            export_for_embedded(spec, &net, "demo", &platform::Device::jetson_nano_gpu())
                .unwrap();
        assert!(artifact.json_bytes > 0);
        assert!(artifact.seconds_per_inference > 0.0);
        let mut restored = artifact.exported.instantiate().unwrap();
        assert_eq!(restored.predict(&[0.1, 0.2, 0.3, 0.4]).len(), 2);
    }
}
