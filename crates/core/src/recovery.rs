//! Retry/backoff machinery for pipeline stages.
//!
//! The paper's Tool 4 runs "without user interaction" until a quality
//! gate is met — on real hardware that means surviving transient stage
//! failures (a flaky measurement campaign, a failed characterization
//! fit). [`StageRunner`] wraps each pipeline stage with a bounded retry
//! loop and exponential backoff, records every failed attempt with its
//! stage name, and can replay failures deterministically from a
//! [`faultsim::FaultPlan`] so the recovery path is tested rather than
//! hoped for.
//!
//! [`crate::pipeline::ms::MsPipeline::run_with_recovery`] builds on this
//! runner and adds graceful degradation: when the calibration +
//! characterization stage keeps failing even across retries, it falls
//! back to a smaller calibration campaign (fewer samples per mixture —
//! walking down Figure 6's sample-count axis) instead of aborting.

use std::sync::Arc;
use std::time::Duration;

use faultsim::FaultPlan;

use crate::PipelineError;

/// Bounded-retry policy with exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Attempts per stage, including the first (≥ 1).
    pub max_attempts: usize,
    /// Delay before the first retry, in milliseconds. Zero (the default
    /// in tests) skips sleeping entirely.
    pub base_delay_ms: u64,
    /// Multiplier applied to the delay after each failed attempt.
    pub backoff: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_delay_ms: 0,
            backoff: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Delay before retry number `retry` (1-based).
    fn delay(&self, retry: usize) -> Duration {
        let ms = self.base_delay_ms as f64 * self.backoff.powi(retry as i32 - 1);
        Duration::from_millis(ms as u64)
    }
}

/// One failed stage attempt, for post-mortem inspection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageAttempt {
    /// The stage that failed.
    pub stage: String,
    /// Attempt number (1-based).
    pub attempt: usize,
    /// Rendered error of that attempt.
    pub error: String,
}

/// Runs pipeline stages under a [`RetryPolicy`], logging failures.
#[derive(Debug, Default)]
pub struct StageRunner {
    policy: RetryPolicy,
    plan: Option<Arc<FaultPlan>>,
    log: Vec<StageAttempt>,
}

impl StageRunner {
    /// A runner with the given policy.
    pub fn new(policy: RetryPolicy) -> Self {
        Self {
            policy,
            plan: None,
            log: Vec::new(),
        }
    }

    /// Attaches a fault plan: stages scheduled there fail with
    /// [`PipelineError::Injected`] before their body runs.
    #[must_use]
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.plan = Some(plan);
        self
    }

    /// The retry policy.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// The fault plan, if any (shared with e.g. the training guard).
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.plan.as_ref()
    }

    /// Every failed attempt so far, across all stages.
    pub fn log(&self) -> &[StageAttempt] {
        &self.log
    }

    /// Runs `stage`, retrying up to the policy's attempt budget with
    /// exponential backoff between attempts.
    ///
    /// # Errors
    ///
    /// Returns [`PipelineError::Stage`] wrapping the final attempt's
    /// error once the budget is exhausted.
    pub fn run<T>(
        &mut self,
        stage: &str,
        mut body: impl FnMut() -> Result<T, PipelineError>,
    ) -> Result<T, PipelineError> {
        let max_attempts = self.policy.max_attempts.max(1);
        let mut attempt = 1;
        let _stage_span = obs::span(&format!("pipeline.stage.{stage}"));
        loop {
            let injected = self
                .plan
                .as_deref()
                .is_some_and(|p| p.fail_stage(stage));
            let result = if injected {
                Err(PipelineError::Injected(stage.to_string()))
            } else {
                body()
            };
            match result {
                Ok(value) => return Ok(value),
                Err(error) => {
                    self.log.push(StageAttempt {
                        stage: stage.to_string(),
                        attempt,
                        error: error.to_string(),
                    });
                    if attempt >= max_attempts {
                        return Err(PipelineError::Stage {
                            stage: stage.to_string(),
                            attempts: attempt,
                            source: Box::new(error),
                        });
                    }
                    obs::counter_add("pipeline.stage.retries", 1);
                    let delay = self.policy.delay(attempt);
                    if !delay.is_zero() {
                        std::thread::sleep(delay);
                    }
                    attempt += 1;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_try_success_leaves_no_log() {
        let mut runner = StageRunner::new(RetryPolicy::default());
        let out = runner.run("simulate", || Ok(7)).unwrap();
        assert_eq!(out, 7);
        assert!(runner.log().is_empty());
    }

    #[test]
    fn transient_failure_is_retried() {
        let mut runner = StageRunner::new(RetryPolicy::default());
        let mut calls = 0;
        let out = runner
            .run("characterize", || {
                calls += 1;
                if calls < 3 {
                    Err(PipelineError::InvalidConfig("flaky".into()))
                } else {
                    Ok("done")
                }
            })
            .unwrap();
        assert_eq!(out, "done");
        assert_eq!(calls, 3);
        assert_eq!(runner.log().len(), 2);
        assert_eq!(runner.log()[0].attempt, 1);
        assert_eq!(runner.log()[1].attempt, 2);
    }

    #[test]
    fn exhausted_budget_wraps_last_error_with_stage_context() {
        let mut runner = StageRunner::new(RetryPolicy {
            max_attempts: 2,
            ..RetryPolicy::default()
        });
        let err = runner
            .run::<()>("train", || Err(PipelineError::InvalidConfig("boom".into())))
            .unwrap_err();
        match &err {
            PipelineError::Stage {
                stage,
                attempts,
                source,
            } => {
                assert_eq!(stage, "train");
                assert_eq!(*attempts, 2);
                assert!(matches!(**source, PipelineError::InvalidConfig(_)));
            }
            other => panic!("expected Stage error, got {other:?}"),
        }
        assert!(err.to_string().contains("after 2 attempts"));
        assert!(std::error::Error::source(&err).is_some());
    }

    #[test]
    fn injected_faults_consume_attempts_then_stage_succeeds() {
        let plan = Arc::new(FaultPlan::new().with_stage_failure("simulate", 2));
        let mut runner =
            StageRunner::new(RetryPolicy::default()).with_fault_plan(Arc::clone(&plan));
        let mut calls = 0;
        let out = runner
            .run("simulate", || {
                calls += 1;
                Ok(1)
            })
            .unwrap();
        assert_eq!(out, 1);
        // Body only runs once the injected failures are spent.
        assert_eq!(calls, 1);
        assert_eq!(runner.log().len(), 2);
        assert!(runner.log()[0].error.contains("injected"));
        assert_eq!(plan.events().len(), 2);
    }

    #[test]
    fn backoff_delays_grow_geometrically() {
        let policy = RetryPolicy {
            max_attempts: 4,
            base_delay_ms: 10,
            backoff: 3.0,
        };
        assert_eq!(policy.delay(1), Duration::from_millis(10));
        assert_eq!(policy.delay(2), Duration::from_millis(30));
        assert_eq!(policy.delay(3), Duration::from_millis(90));
    }
}
