use std::fmt;

/// Error type for the end-to-end pipelines.
#[derive(Debug)]
#[non_exhaustive]
pub enum PipelineError {
    /// The MS toolchain failed.
    Ms(ms_sim::MsSimError),
    /// The NMR simulation failed.
    Nmr(nmr_sim::NmrSimError),
    /// Network construction or training failed.
    Neural(neural::NeuralError),
    /// A chemometric baseline failed.
    Chemometrics(chemometrics::ChemometricsError),
    /// A spectral operation failed.
    Spectrum(spectrum::SpectrumError),
    /// The datastore failed.
    Store(datastore::StoreError),
    /// A pipeline configuration was inconsistent.
    InvalidConfig(String),
    /// A pipeline stage exhausted its retry budget; `source` is the last
    /// attempt's error.
    Stage {
        /// Stage name (e.g. `"calibration"`).
        stage: String,
        /// Number of attempts made.
        attempts: usize,
        /// The error of the final attempt.
        source: Box<PipelineError>,
    },
    /// A failure injected by a [`faultsim::FaultPlan`] (testing aid).
    Injected(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Ms(e) => write!(f, "ms toolchain: {e}"),
            PipelineError::Nmr(e) => write!(f, "nmr simulation: {e}"),
            PipelineError::Neural(e) => write!(f, "neural network: {e}"),
            PipelineError::Chemometrics(e) => write!(f, "chemometrics: {e}"),
            PipelineError::Spectrum(e) => write!(f, "spectrum: {e}"),
            PipelineError::Store(e) => write!(f, "datastore: {e}"),
            PipelineError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            PipelineError::Stage {
                stage,
                attempts,
                source,
            } => write!(f, "stage {stage} failed after {attempts} attempts: {source}"),
            PipelineError::Injected(stage) => write!(f, "injected fault in stage {stage}"),
        }
    }
}

impl std::error::Error for PipelineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PipelineError::Ms(e) => Some(e),
            PipelineError::Nmr(e) => Some(e),
            PipelineError::Neural(e) => Some(e),
            PipelineError::Chemometrics(e) => Some(e),
            PipelineError::Spectrum(e) => Some(e),
            PipelineError::Store(e) => Some(e),
            PipelineError::Stage { source, .. } => Some(source.as_ref()),
            PipelineError::InvalidConfig(_) | PipelineError::Injected(_) => None,
        }
    }
}

impl From<ms_sim::MsSimError> for PipelineError {
    fn from(e: ms_sim::MsSimError) -> Self {
        PipelineError::Ms(e)
    }
}

impl From<nmr_sim::NmrSimError> for PipelineError {
    fn from(e: nmr_sim::NmrSimError) -> Self {
        PipelineError::Nmr(e)
    }
}

impl From<neural::NeuralError> for PipelineError {
    fn from(e: neural::NeuralError) -> Self {
        PipelineError::Neural(e)
    }
}

impl From<chemometrics::ChemometricsError> for PipelineError {
    fn from(e: chemometrics::ChemometricsError) -> Self {
        PipelineError::Chemometrics(e)
    }
}

impl From<spectrum::SpectrumError> for PipelineError {
    fn from(e: spectrum::SpectrumError) -> Self {
        PipelineError::Spectrum(e)
    }
}

impl From<datastore::StoreError> for PipelineError {
    fn from(e: datastore::StoreError) -> Self {
        PipelineError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_and_sources() {
        let err = PipelineError::from(spectrum::SpectrumError::Empty);
        assert!(err.to_string().contains("spectrum"));
        assert!(std::error::Error::source(&err).is_some());
        assert!(
            std::error::Error::source(&PipelineError::InvalidConfig("x".into())).is_none()
        );
    }
}
