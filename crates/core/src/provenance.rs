//! Recording pipeline artifacts in the provenance [`datastore`].
//!
//! "All objects stored in the database also store metadata that make it
//! possible to trace the basis on which the respective data was
//! generated. This has been done to comprehend which measurements have
//! been used to train the simulators and which data has been used to
//! train a specific network" (paper §III.A.1).

use datastore::{DocumentId, Metadata, Store};
use neural::export::ExportedNetwork;

use crate::pipeline::ms::MsRunReport;
use crate::PipelineError;

/// Collection names used by the recorders.
pub mod collections {
    /// Calibration measurement campaigns.
    pub const MEASUREMENTS: &str = "measurements";
    /// Estimated instrument simulators (Tool 2 output).
    pub const SIMULATORS: &str = "simulators";
    /// Simulated training datasets (Tool 3 output).
    pub const DATASETS: &str = "datasets";
    /// Trained networks (Tool 4 output).
    pub const NETWORKS: &str = "networks";
    /// Evaluation results.
    pub const RESULTS: &str = "results";
}

/// Ids of the documents one recorded MS run produced.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecordedMsRun {
    /// The calibration-campaign document.
    pub measurements: DocumentId,
    /// The estimated simulator document.
    pub simulator: DocumentId,
    /// The simulated-dataset document.
    pub dataset: DocumentId,
    /// The trained-network document.
    pub network: DocumentId,
    /// The evaluation-result document.
    pub result: DocumentId,
}

/// Records a complete MS pipeline run as a provenance chain:
/// measurements → simulator → dataset → network → result.
///
/// # Errors
///
/// Returns [`PipelineError::Store`] or [`PipelineError::Neural`] on
/// serialization failure.
pub fn record_ms_run(
    store: &Store,
    report: &MsRunReport,
    run_label: &str,
) -> Result<RecordedMsRun, PipelineError> {
    let measurements = store.insert(
        collections::MEASUREMENTS,
        Metadata::created_by("mms-prototype")
            .with_param("run", run_label)
            .with_param("measurements", report.characterization.measurements),
        &serde_json::json!({
            "mixtures": 14,
            "samples": report.characterization.measurements,
        }),
    )?;
    let simulator = store.insert(
        collections::SIMULATORS,
        Metadata::created_by("tool-2")
            .with_param("run", run_label)
            .with_param("width_points", report.characterization.width_points)
            .with_parent(measurements),
        &report.characterization.model,
    )?;
    let dataset = store.insert(
        collections::DATASETS,
        Metadata::created_by("tool-3")
            .with_param("run", run_label)
            .with_parent(simulator),
        &serde_json::json!({
            "substances": report.substances,
        }),
    )?;
    let exported = ExportedNetwork::from_network(
        report.spec.clone(),
        &report.network,
        format!("{run_label}-network"),
    );
    let network = store.insert(
        collections::NETWORKS,
        Metadata::created_by("tool-4")
            .with_param("run", run_label)
            .with_param("params", report.network.param_count())
            .with_parent(dataset),
        &exported,
    )?;
    let result = store.insert(
        collections::RESULTS,
        Metadata::created_by("evaluation")
            .with_param("run", run_label)
            .with_parents([network, measurements]),
        &serde_json::json!({
            "validation_mae": report.validation_mae,
            "measured_mae": report.measured_mae,
            "per_substance_measured": report.per_substance_measured,
        }),
    )?;
    Ok(RecordedMsRun {
        measurements,
        simulator,
        dataset,
        network,
        result,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::ms::{MsPipeline, MsPipelineConfig};
    use ms_sim::prototype::MmsPrototype;

    #[test]
    fn ms_run_is_fully_traceable() {
        let mut prototype = MmsPrototype::new(3);
        let report = MsPipeline::new(MsPipelineConfig::quick_test())
            .unwrap()
            .run(&mut prototype)
            .unwrap();
        let store = Store::in_memory();
        let recorded = record_ms_run(&store, &report, "test-run").unwrap();

        // The result's lineage reaches back to the raw measurements.
        let lineage = store.lineage(recorded.result).unwrap();
        assert!(lineage.contains(&recorded.measurements));
        assert!(lineage.contains(&recorded.simulator));
        assert!(lineage.contains(&recorded.dataset));
        assert!(lineage.contains(&recorded.network));

        // The trained network payload can be re-instantiated and used.
        let exported: ExportedNetwork = store.get_payload(recorded.network).unwrap();
        let mut net = exported.instantiate().unwrap();
        let out = net.predict(&vec![0.0; report.spec.input_len]);
        assert_eq!(out.len(), report.substances.len());

        // Query by run label finds the documents.
        assert_eq!(store.query(collections::NETWORKS, "run", "test-run").len(), 1);
    }
}
