//! Bounded lock-free event journal and name interning.
//!
//! The journal is a fixed ring of seqlock slots. Writers claim a ticket
//! with one `fetch_add`, then publish the record into `ticket % capacity`
//! under a per-slot sequence lock. When the ring laps itself while a
//! slot is mid-write the newer record is counted in `dropped` instead of
//! blocking — recording never waits on another thread.
//!
//! Readers ([`Journal::snapshot`]) retry each slot until its sequence is
//! stable, then sort by ticket so the returned order matches claim
//! order. Torn (in-progress) slots are skipped, never half-read.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{PoisonError, RwLock};

/// What a journal record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A completed span: `a` = start nanos, `b` = end nanos.
    Span,
    /// A gauge update: `a` = timestamp nanos, `b` = `f64` value bits.
    Gauge,
}

impl RecordKind {
    fn encode(self) -> u64 {
        match self {
            RecordKind::Span => 0,
            RecordKind::Gauge => 1,
        }
    }

    fn decode(bits: u64) -> Self {
        match bits {
            1 => RecordKind::Gauge,
            _ => RecordKind::Span,
        }
    }
}

/// A decoded journal record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawEvent {
    /// Global claim order (monotone across threads).
    pub ticket: u64,
    /// Record kind.
    pub kind: RecordKind,
    /// Interned name id (resolve via [`NameTable::resolve`]).
    pub name_id: u32,
    /// Observability thread id (1-based; see `span::thread_id`).
    pub thread: u32,
    /// Span nesting depth at open time (0 = root). Zero for gauges.
    pub depth: u32,
    /// Start nanos (spans) or timestamp nanos (gauges).
    pub a: u64,
    /// End nanos (spans) or `f64::to_bits` value (gauges).
    pub b: u64,
}

/// One seqlock slot. `seq` is even when stable, odd while a writer owns
/// the slot; it increments by 2 per publish.
#[derive(Debug)]
struct Slot {
    seq: AtomicU64,
    ticket: AtomicU64,
    /// kind in the low word, depth in the high word.
    kd: AtomicU64,
    /// name id in the low word, thread id in the high word.
    name_thread: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Self {
            seq: AtomicU64::new(0),
            ticket: AtomicU64::new(0),
            kd: AtomicU64::new(0),
            name_thread: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
        }
    }
}

/// Bounded lock-free ring of observability records.
#[derive(Debug)]
pub struct Journal {
    slots: Vec<Slot>,
    cursor: AtomicU64,
    dropped: AtomicU64,
}

impl Journal {
    /// A journal holding at most `capacity` records (rounded up to 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            slots: (0..capacity).map(|_| Slot::new()).collect(),
            cursor: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Total records ever claimed (including ones since overwritten).
    pub fn recorded(&self) -> u64 {
        self.cursor.load(Ordering::SeqCst)
    }

    /// Records abandoned because their slot was mid-write when the ring
    /// lapped it.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::SeqCst)
    }

    /// Publishes one record. Never blocks: if the target slot is owned by
    /// a concurrent writer the record is dropped and counted.
    pub fn record(
        &self,
        kind: RecordKind,
        name_id: u32,
        thread: u32,
        depth: u32,
        a: u64,
        b: u64,
    ) {
        let ticket = self.cursor.fetch_add(1, Ordering::SeqCst);
        let slot = &self.slots[(ticket % self.slots.len() as u64) as usize];
        let seq = slot.seq.load(Ordering::SeqCst);
        if seq % 2 == 1 {
            // Another writer owns this slot (ring lapped a stalled write).
            self.dropped.fetch_add(1, Ordering::SeqCst);
            return;
        }
        if slot
            .seq
            .compare_exchange(seq, seq + 1, Ordering::SeqCst, Ordering::SeqCst)
            .is_err()
        {
            self.dropped.fetch_add(1, Ordering::SeqCst);
            return;
        }
        slot.ticket.store(ticket, Ordering::SeqCst);
        slot.kd
            .store(kind.encode() | (u64::from(depth) << 32), Ordering::SeqCst);
        slot.name_thread
            .store(u64::from(name_id) | (u64::from(thread) << 32), Ordering::SeqCst);
        slot.a.store(a, Ordering::SeqCst);
        slot.b.store(b, Ordering::SeqCst);
        slot.seq.store(seq + 2, Ordering::SeqCst);
    }

    /// A consistent snapshot of every stable record, sorted by ticket
    /// (i.e. claim order). Slots currently being written are skipped.
    pub fn snapshot(&self) -> Vec<RawEvent> {
        let mut events = Vec::with_capacity(self.slots.len());
        for slot in &self.slots {
            let s1 = slot.seq.load(Ordering::SeqCst);
            if s1 == 0 || s1 % 2 == 1 {
                continue; // never written, or write in progress
            }
            let ticket = slot.ticket.load(Ordering::SeqCst);
            let kd = slot.kd.load(Ordering::SeqCst);
            let name_thread = slot.name_thread.load(Ordering::SeqCst);
            let a = slot.a.load(Ordering::SeqCst);
            let b = slot.b.load(Ordering::SeqCst);
            if slot.seq.load(Ordering::SeqCst) != s1 {
                continue; // torn read: a writer raced us
            }
            events.push(RawEvent {
                ticket,
                kind: RecordKind::decode(kd & 0xFFFF_FFFF),
                name_id: (name_thread & 0xFFFF_FFFF) as u32,
                thread: (name_thread >> 32) as u32,
                depth: (kd >> 32) as u32,
                a,
                b,
            });
        }
        events.sort_by_key(|e| e.ticket);
        events
    }
}

/// Interns span/metric names to dense `u32` ids so the journal's
/// fixed-size slots never store strings.
#[derive(Debug, Default)]
pub struct NameTable {
    /// Forward map plus id-indexed reverse list, updated together.
    names: RwLock<(HashMap<String, u32>, Vec<String>)>,
}

impl NameTable {
    /// An empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// The id for `name`, assigning the next free id on first sight.
    pub fn intern(&self, name: &str) -> u32 {
        if let Some(&id) = self
            .names
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .0
            .get(name)
        {
            return id;
        }
        let mut guard = self.names.write().unwrap_or_else(PoisonError::into_inner);
        let (map, list) = &mut *guard;
        if let Some(&id) = map.get(name) {
            return id; // raced with another writer
        }
        let id = list.len() as u32;
        list.push(name.to_string());
        map.insert(name.to_string(), id);
        id
    }

    /// The name behind `id`, or `"?"` for an id this table never issued.
    pub fn resolve(&self, id: u32) -> String {
        self.names
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .1
            .get(id as usize)
            .cloned()
            .unwrap_or_else(|| "?".to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_come_back_in_ticket_order() {
        let j = Journal::new(8);
        for i in 0..5u64 {
            j.record(RecordKind::Span, i as u32, 1, 0, i * 10, i * 10 + 5);
        }
        let events = j.snapshot();
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.ticket, i as u64);
            assert_eq!(e.name_id, i as u32);
            assert_eq!(e.a, i as u64 * 10);
            assert_eq!(e.kind, RecordKind::Span);
        }
        assert_eq!(j.recorded(), 5);
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn ring_keeps_only_newest_capacity_records() {
        let j = Journal::new(4);
        for i in 0..10u64 {
            j.record(RecordKind::Span, i as u32, 1, 0, i, i + 1);
        }
        let events = j.snapshot();
        assert_eq!(events.len(), 4);
        let tickets: Vec<u64> = events.iter().map(|e| e.ticket).collect();
        assert_eq!(tickets, vec![6, 7, 8, 9]);
        assert_eq!(j.recorded(), 10);
    }

    #[test]
    fn gauge_records_round_trip_f64_bits() {
        let j = Journal::new(4);
        j.record(RecordKind::Gauge, 3, 2, 0, 100, 2.5f64.to_bits());
        let events = j.snapshot();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, RecordKind::Gauge);
        assert_eq!(f64::from_bits(events[0].b), 2.5);
        assert_eq!(events[0].thread, 2);
    }

    #[test]
    fn name_table_interns_stably() {
        let t = NameTable::new();
        let a = t.intern("train.epoch");
        let b = t.intern("serve.batch");
        assert_eq!(t.intern("train.epoch"), a);
        assert_ne!(a, b);
        assert_eq!(t.resolve(a), "train.epoch");
        assert_eq!(t.resolve(b), "serve.batch");
        assert_eq!(t.resolve(999), "?");
    }

    #[test]
    fn concurrent_writers_lose_nothing_when_ring_is_big_enough() {
        use std::sync::Arc;
        let j = Arc::new(Journal::new(4096));
        let mut handles = Vec::new();
        for t in 0..8u32 {
            let j = Arc::clone(&j);
            handles.push(std::thread::spawn(move || {
                for i in 0..100u64 {
                    j.record(RecordKind::Span, t, t + 1, 0, i, i + 1);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(j.recorded(), 800);
        assert_eq!(j.dropped(), 0);
        assert_eq!(j.snapshot().len(), 800);
    }
}
