//! Resolved events, subscribers, and exporters.
//!
//! The journal stores compact fixed-size records; [`Event`] is the
//! resolved form with the interned name expanded. Subscribers receive
//! events synchronously as they are recorded; exporters render a slice
//! of events to text. All JSON here is hand-rolled (the crate is
//! dependency-free) and kept simple enough to be parsed back by any
//! JSON reader — the obs round-trip tests do exactly that with
//! `serde_json` as a dev-dependency.

use std::sync::{Mutex, PoisonError};

/// What an [`Event`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A completed timing span.
    Span,
    /// A gauge update.
    Gauge,
}

/// A resolved observability event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Span or metric name, e.g. `serve.batch`.
    pub name: String,
    /// Span vs gauge.
    pub kind: EventKind,
    /// Observability thread id (1-based).
    pub thread: u32,
    /// Nesting depth at open time (0 = root). Zero for gauges.
    pub depth: u32,
    /// Start (spans) or update (gauges) time in clock nanos.
    pub start_ns: u64,
    /// End time in clock nanos. Equals `start_ns` for gauges.
    pub end_ns: u64,
    /// Gauge value; `0.0` for spans.
    pub value: f64,
}

impl Event {
    /// Span duration in nanoseconds (zero for gauges).
    pub fn duration_nanos(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }
}

/// Receives every event synchronously at record time.
///
/// Implementations must be cheap and non-blocking — they run inline in
/// span drops on hot paths.
pub trait Subscriber: Send + Sync {
    /// Called once per completed span / gauge update.
    fn on_event(&self, event: &Event);
}

/// Collects indented human-readable lines, one per event.
#[derive(Debug, Default)]
pub struct HumanSubscriber {
    lines: Mutex<Vec<String>>,
}

impl HumanSubscriber {
    /// An empty subscriber.
    pub fn new() -> Self {
        Self::default()
    }

    /// The lines collected so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

impl Subscriber for HumanSubscriber {
    fn on_event(&self, event: &Event) {
        self.lines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(human_line(event));
    }
}

/// Collects one JSON object per line (JSON-lines / ndjson).
#[derive(Debug, Default)]
pub struct JsonLinesSubscriber {
    lines: Mutex<Vec<String>>,
}

impl JsonLinesSubscriber {
    /// An empty subscriber.
    pub fn new() -> Self {
        Self::default()
    }

    /// The JSON lines collected so far.
    pub fn lines(&self) -> Vec<String> {
        self.lines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }
}

impl Subscriber for JsonLinesSubscriber {
    fn on_event(&self, event: &Event) {
        self.lines
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(json_line(event));
    }
}

/// Buffers events and renders them as a chrome-trace (`about://tracing`
/// / Perfetto) JSON document on demand.
#[derive(Debug, Default)]
pub struct ChromeTraceSubscriber {
    events: Mutex<Vec<Event>>,
}

impl ChromeTraceSubscriber {
    /// An empty subscriber.
    pub fn new() -> Self {
        Self::default()
    }

    /// Renders everything buffered so far as chrome-trace JSON.
    pub fn to_json(&self) -> String {
        chrome_trace(&self.events.lock().unwrap_or_else(PoisonError::into_inner))
    }

    /// Number of events buffered.
    pub fn len(&self) -> usize {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Whether nothing has been buffered yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

impl Subscriber for ChromeTraceSubscriber {
    fn on_event(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(event.clone());
    }
}

/// One indented human-readable line for an event, e.g.
/// `"  serve.request 1.250ms [t3]"` or `"train.loss = 0.4821 [t1]"`.
pub fn human_line(event: &Event) -> String {
    let indent = "  ".repeat(event.depth as usize);
    match event.kind {
        EventKind::Span => format!(
            "{indent}{} {:.3}ms [t{}]",
            event.name,
            event.duration_nanos() as f64 / 1_000_000.0,
            event.thread
        ),
        EventKind::Gauge => format!(
            "{indent}{} = {} [t{}]",
            event.name,
            fmt_f64(event.value),
            event.thread
        ),
    }
}

/// One JSON object (no trailing newline) for an event.
pub fn json_line(event: &Event) -> String {
    let kind = match event.kind {
        EventKind::Span => "span",
        EventKind::Gauge => "gauge",
    };
    format!(
        "{{\"name\":{},\"kind\":\"{kind}\",\"thread\":{},\"depth\":{},\"start_ns\":{},\"end_ns\":{},\"value\":{}}}",
        escape_json(&event.name),
        event.thread,
        event.depth,
        event.start_ns,
        event.end_ns,
        fmt_f64(event.value),
    )
}

/// Renders events as a chrome-trace JSON document: spans become `"X"`
/// (complete) events with microsecond `ts`/`dur`, gauges become `"C"`
/// (counter) events. Load the output in `about://tracing` or Perfetto.
pub fn chrome_trace(events: &[Event]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    for event in events {
        if !first {
            out.push(',');
        }
        first = false;
        match event.kind {
            EventKind::Span => {
                out.push_str(&format!(
                    "{{\"name\":{},\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}}}",
                    escape_json(&event.name),
                    fmt_f64(event.start_ns as f64 / 1000.0),
                    fmt_f64(event.duration_nanos() as f64 / 1000.0),
                    event.thread,
                ));
            }
            EventKind::Gauge => {
                out.push_str(&format!(
                    "{{\"name\":{},\"ph\":\"C\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{\"value\":{}}}}}",
                    escape_json(&event.name),
                    fmt_f64(event.start_ns as f64 / 1000.0),
                    event.thread,
                    fmt_f64(event.value),
                ));
            }
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Formats an `f64` as a JSON number; non-finite values become `null`.
fn fmt_f64(value: f64) -> String {
    if value.is_finite() {
        let mut s = format!("{value}");
        // `{}` prints integral floats without a dot; keep them valid JSON
        // numbers but unambiguous as floats.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            s.push_str(".0");
        }
        s
    } else {
        "null".to_string()
    }
}

/// Escapes a string as a JSON string literal (with quotes).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span_event(name: &str, depth: u32, start: u64, end: u64) -> Event {
        Event {
            name: name.to_string(),
            kind: EventKind::Span,
            thread: 1,
            depth,
            start_ns: start,
            end_ns: end,
            value: 0.0,
        }
    }

    #[test]
    fn human_line_indents_by_depth() {
        let line = human_line(&span_event("serve.request", 2, 0, 1_500_000));
        assert_eq!(line, "    serve.request 1.500ms [t1]");
    }

    #[test]
    fn json_line_escapes_and_tags_kind() {
        let mut e = span_event("a\"b", 0, 10, 20);
        e.kind = EventKind::Gauge;
        e.value = 1.5;
        let line = json_line(&e);
        assert!(line.contains("\"name\":\"a\\\"b\""));
        assert!(line.contains("\"kind\":\"gauge\""));
        assert!(line.contains("\"value\":1.5"));
    }

    #[test]
    fn chrome_trace_emits_x_and_c_events() {
        let mut gauge = span_event("queue.depth", 0, 2000, 2000);
        gauge.kind = EventKind::Gauge;
        gauge.value = 4.0;
        let doc = chrome_trace(&[span_event("serve.batch", 0, 1000, 3000), gauge]);
        assert!(doc.starts_with("{\"traceEvents\":["));
        assert!(doc.contains("\"ph\":\"X\""));
        assert!(doc.contains("\"ph\":\"C\""));
        assert!(doc.contains("\"dur\":2.0"));
        assert!(doc.ends_with("\"displayTimeUnit\":\"ms\"}"));
    }

    #[test]
    fn non_finite_gauge_becomes_null() {
        let mut e = span_event("g", 0, 0, 0);
        e.kind = EventKind::Gauge;
        e.value = f64::NAN;
        assert!(json_line(&e).contains("\"value\":null"));
    }

    #[test]
    fn subscribers_buffer_events() {
        let human = HumanSubscriber::new();
        let json = JsonLinesSubscriber::new();
        let chrome = ChromeTraceSubscriber::new();
        let e = span_event("x", 0, 0, 1000);
        human.on_event(&e);
        json.on_event(&e);
        chrome.on_event(&e);
        assert_eq!(human.lines().len(), 1);
        assert_eq!(json.lines().len(), 1);
        assert_eq!(chrome.len(), 1);
        assert!(!chrome.is_empty());
        assert!(chrome.to_json().contains("\"name\":\"x\""));
    }
}
