//! Structured observability for the spectroscopy workspace: hierarchical
//! spans, atomic counters/gauges, power-of-two histograms, a bounded
//! lock-free event journal, and pluggable exporters — with zero
//! dependencies and a near-zero-cost disabled path.
//!
//! # Model
//!
//! A [`Collector`] owns four things: a [`Clock`] (the workspace's only
//! sanctioned time source — inject a [`ManualClock`] for deterministic
//! tests), a [`MetricsRegistry`] of named counters/gauges/histograms, a
//! bounded seqlock [`Journal`] of span/gauge records, and an optional
//! [`Subscriber`] that sees every event synchronously.
//!
//! Instrumented code calls the free functions ([`span`], [`counter_add`],
//! [`gauge_set`]) or the [`span!`] macro; they consult a process-global
//! collector slot. When nothing is installed the entire call is one
//! relaxed atomic load — this is the fast path the `serve_load` overhead
//! gate measures.
//!
//! ```
//! let guard = obs::install(obs::Collector::new());
//! {
//!     let _span = obs::span!("demo.work");
//!     obs::counter_add("demo.items", 3);
//! }
//! let events = guard.collector().events();
//! assert_eq!(events[0].name, "demo.work");
//! drop(guard); // uninstalls; later spans are no-ops again
//! ```
//!
//! Installation is guarded by a process-wide mutex held for the guard's
//! lifetime, so concurrent tests that each install a collector serialize
//! instead of clobbering each other's events.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod export;
mod journal;
mod metrics;
mod span;

pub use clock::{Clock, ManualClock, MonotonicClock};
pub use export::{
    chrome_trace, human_line, json_line, ChromeTraceSubscriber, Event, EventKind,
    HumanSubscriber, JsonLinesSubscriber, Subscriber,
};
pub use journal::{Journal, NameTable, RawEvent, RecordKind};
pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricsRegistry, MetricsSnapshot, BUCKETS,
};
pub use span::{thread_id, SpanGuard};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError, RwLock};

/// Fast-path switch: `false` means [`span`]/[`counter_add`]/[`gauge_set`]
/// return after a single relaxed load.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// The installed collector, if any.
static ACTIVE: RwLock<Option<Arc<Collector>>> = RwLock::new(None);

/// Serializes [`install`] callers: the guard holds this for its lifetime.
static INSTALL_GATE: Mutex<()> = Mutex::new(());

/// Default journal capacity (records) for [`Collector::new`].
pub const DEFAULT_JOURNAL_CAPACITY: usize = 16_384;

/// Owns the clock, metrics, journal, and optional subscriber behind one
/// installed observability session.
pub struct Collector {
    clock: Arc<dyn Clock>,
    journal: Journal,
    names: NameTable,
    registry: MetricsRegistry,
    subscriber: RwLock<Option<Arc<dyn Subscriber>>>,
}

impl std::fmt::Debug for Collector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Collector")
            .field("journal_capacity", &self.journal.capacity())
            .field("recorded", &self.journal.recorded())
            .finish_non_exhaustive()
    }
}

impl Default for Collector {
    fn default() -> Self {
        Self::new()
    }
}

impl Collector {
    /// A collector with a [`MonotonicClock`], the default journal
    /// capacity, and no subscriber.
    pub fn new() -> Self {
        Self::with_clock(Arc::new(MonotonicClock::new()))
    }

    /// A collector timing spans with `clock` (use [`ManualClock`] in
    /// tests for exact, reproducible durations).
    pub fn with_clock(clock: Arc<dyn Clock>) -> Self {
        Self {
            clock,
            journal: Journal::new(DEFAULT_JOURNAL_CAPACITY),
            names: NameTable::new(),
            registry: MetricsRegistry::new(),
            subscriber: RwLock::new(None),
        }
    }

    /// Replaces the journal with one holding `capacity` records.
    pub fn with_journal_capacity(mut self, capacity: usize) -> Self {
        self.journal = Journal::new(capacity);
        self
    }

    /// Attaches a subscriber that sees every event synchronously.
    pub fn with_subscriber(self, subscriber: Arc<dyn Subscriber>) -> Self {
        *self
            .subscriber
            .write()
            .unwrap_or_else(PoisonError::into_inner) = Some(subscriber);
        self
    }

    /// Current reading of this collector's clock.
    pub fn now_nanos(&self) -> u64 {
        self.clock.now_nanos()
    }

    /// Interns `name`, returning its dense id.
    pub(crate) fn intern(&self, name: &str) -> u32 {
        self.names.intern(name)
    }

    /// The counter named `name` (created on first use).
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.registry.counter(name)
    }

    /// The gauge named `name` (created on first use).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.registry.gauge(name)
    }

    /// The histogram named `name` (created on first use).
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.registry.histogram(name)
    }

    /// Adds `delta` to the counter named `name`.
    pub fn counter_add(&self, name: &str, delta: u64) {
        self.registry.counter(name).add(delta);
    }

    /// Sets the gauge named `name`, journals the update, and notifies the
    /// subscriber.
    pub fn gauge_set(&self, name: &str, value: f64) {
        self.registry.gauge(name).set(value);
        let name_id = self.intern(name);
        let now = self.now_nanos();
        let thread = span::thread_id();
        self.journal
            .record(RecordKind::Gauge, name_id, thread, 0, now, value.to_bits());
        if let Some(subscriber) = self.current_subscriber() {
            subscriber.on_event(&Event {
                name: name.to_string(),
                kind: EventKind::Gauge,
                thread,
                depth: 0,
                start_ns: now,
                end_ns: now,
                value,
            });
        }
    }

    /// Journals a completed span and notifies the subscriber. Called by
    /// [`SpanGuard`] on drop.
    pub(crate) fn finish_span(&self, name_id: u32, start: u64, end: u64, depth: u32, thread: u32) {
        self.journal
            .record(RecordKind::Span, name_id, thread, depth, start, end);
        if let Some(subscriber) = self.current_subscriber() {
            subscriber.on_event(&Event {
                name: self.names.resolve(name_id),
                kind: EventKind::Span,
                thread,
                depth,
                start_ns: start,
                end_ns: end,
                value: 0.0,
            });
        }
    }

    fn current_subscriber(&self) -> Option<Arc<dyn Subscriber>> {
        self.subscriber
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .clone()
    }

    /// A resolved snapshot of the journal in claim order.
    pub fn events(&self) -> Vec<Event> {
        self.journal
            .snapshot()
            .into_iter()
            .map(|raw| match raw.kind {
                RecordKind::Span => Event {
                    name: self.names.resolve(raw.name_id),
                    kind: EventKind::Span,
                    thread: raw.thread,
                    depth: raw.depth,
                    start_ns: raw.a,
                    end_ns: raw.b,
                    value: 0.0,
                },
                RecordKind::Gauge => Event {
                    name: self.names.resolve(raw.name_id),
                    kind: EventKind::Gauge,
                    thread: raw.thread,
                    depth: raw.depth,
                    start_ns: raw.a,
                    end_ns: raw.a,
                    value: f64::from_bits(raw.b),
                },
            })
            .collect()
    }

    /// A sorted snapshot of every registered metric.
    pub fn metrics(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Renders the current journal contents as chrome-trace JSON.
    pub fn chrome_trace(&self) -> String {
        export::chrome_trace(&self.events())
    }

    /// Total journal records ever claimed.
    pub fn journal_recorded(&self) -> u64 {
        self.journal.recorded()
    }

    /// Journal records dropped under overwrite contention.
    pub fn journal_dropped(&self) -> u64 {
        self.journal.dropped()
    }
}

/// Keeps a collector installed; dropping it uninstalls and re-arms the
/// disabled fast path.
///
/// Holds the process-wide install gate, so two tests that both call
/// [`install`] run one after the other rather than interleaving events.
#[must_use = "dropping the guard uninstalls the collector"]
pub struct InstallGuard {
    collector: Arc<Collector>,
    _gate: MutexGuard<'static, ()>,
}

impl std::fmt::Debug for InstallGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("InstallGuard")
            .field("collector", &self.collector)
            .finish()
    }
}

impl InstallGuard {
    /// The installed collector (for reading events/metrics afterwards).
    pub fn collector(&self) -> &Arc<Collector> {
        &self.collector
    }
}

impl Drop for InstallGuard {
    fn drop(&mut self) {
        // Relaxed: ENABLED is only an advisory fast-path hint; the ACTIVE
        // RwLock below carries the collector and the synchronization. A
        // stale read costs one extra lock round-trip, never a wrong value.
        ENABLED.store(false, Ordering::Relaxed);
        *ACTIVE.write().unwrap_or_else(PoisonError::into_inner) = None;
    }
}

/// Installs `collector` as the process-global observability sink until
/// the returned guard is dropped. Blocks while another guard is alive.
pub fn install(collector: Collector) -> InstallGuard {
    let gate = INSTALL_GATE.lock().unwrap_or_else(PoisonError::into_inner);
    let collector = Arc::new(collector);
    *ACTIVE.write().unwrap_or_else(PoisonError::into_inner) = Some(Arc::clone(&collector));
    // Relaxed: see InstallGuard::drop — ACTIVE is the source of truth.
    ENABLED.store(true, Ordering::Relaxed);
    InstallGuard {
        collector,
        _gate: gate,
    }
}

/// The installed collector, or `None` after one relaxed load when
/// observability is off.
pub fn active() -> Option<Arc<Collector>> {
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    ACTIVE
        .read()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// Opens a span named `name`; the span closes (and is journaled) when
/// the returned guard drops. A no-op guard when nothing is installed.
pub fn span(name: &str) -> SpanGuard {
    match active() {
        Some(collector) => span::open(collector, name),
        None => SpanGuard::disabled(),
    }
}

/// Adds `delta` to the global counter named `name` (no-op when off).
pub fn counter_add(name: &str, delta: u64) {
    if let Some(collector) = active() {
        collector.counter_add(name, delta);
    }
}

/// Sets the global gauge named `name` (no-op when off).
pub fn gauge_set(name: &str, value: f64) {
    if let Some(collector) = active() {
        collector.gauge_set(name, value);
    }
}

/// Opens a span: `let _span = obs::span!("train.epoch");`.
///
/// Equivalent to [`span`]; exists so call sites read like structured
/// logging and can later grow fields without changing shape.
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_reenabled_after_guard_drop() {
        {
            let _outside = span("not.recorded");
            assert!(!_outside.is_recording());
        }
        let guard = install(Collector::with_clock(Arc::new(ManualClock::new(0))));
        {
            let inner = span("recorded");
            assert!(inner.is_recording());
        }
        assert_eq!(guard.collector().events().len(), 1);
        drop(guard);
        let after = span("not.recorded.either");
        assert!(!after.is_recording());
    }

    #[test]
    fn manual_clock_gives_exact_durations() {
        let clock = Arc::new(ManualClock::new(1_000));
        let guard = install(Collector::with_clock(clock.clone() as Arc<dyn Clock>));
        {
            let _span = span!("exact");
            clock.advance(250);
        }
        let events = guard.collector().events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].start_ns, 1_000);
        assert_eq!(events[0].end_ns, 1_250);
        assert_eq!(events[0].duration_nanos(), 250);
    }

    #[test]
    fn counters_and_gauges_flow_through_free_functions() {
        let guard = install(Collector::with_clock(Arc::new(ManualClock::new(0))));
        counter_add("c", 2);
        counter_add("c", 3);
        gauge_set("g", 1.5);
        let metrics = guard.collector().metrics();
        assert_eq!(metrics.counters, vec![("c".to_string(), 5)]);
        assert_eq!(metrics.gauges, vec![("g".to_string(), 1.5)]);
        // The gauge update is also journaled for the trace timeline.
        let events = guard.collector().events();
        assert_eq!(events.len(), 1);
        assert_eq!(events[0].kind, EventKind::Gauge);
        assert_eq!(events[0].value, 1.5);
    }
}
