//! Time sources for span timing.
//!
//! Every timestamp in this crate flows through the [`Clock`] trait — the
//! single sanctioned time source of the workspace (spectro-lint's
//! `no-wallclock-nondeterminism` rule keeps raw `Instant::now()` out of
//! the deterministic crates). Production uses [`MonotonicClock`]; tests
//! and the fault simulator inject a [`ManualClock`] so span durations are
//! exact, reproducible numbers rather than scheduler noise.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// A monotonic nanosecond source.
///
/// Implementations must be monotonic per instance (later calls never
/// return a smaller value than earlier calls observed on the same
/// thread); they need not share an epoch across instances.
pub trait Clock: Send + Sync {
    /// Nanoseconds since this clock's origin.
    fn now_nanos(&self) -> u64;
}

/// Wall-time monotonic clock: nanoseconds since construction.
///
/// This is the only place in the workspace that reads the OS monotonic
/// clock for observability purposes.
#[derive(Debug)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is "now".
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now_nanos(&self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

/// A hand-cranked clock for deterministic tests: time only moves when
/// [`ManualClock::advance`] (or [`ManualClock::set`]) is called.
///
/// Share one instance across threads via `Arc` — reads and advances are
/// atomic.
#[derive(Debug, Default)]
pub struct ManualClock {
    nanos: AtomicU64,
}

impl ManualClock {
    /// A clock starting at `start_nanos`.
    pub fn new(start_nanos: u64) -> Self {
        Self {
            nanos: AtomicU64::new(start_nanos),
        }
    }

    /// Moves time forward by `delta_nanos` and returns the new reading.
    pub fn advance(&self, delta_nanos: u64) -> u64 {
        self.nanos
            .fetch_add(delta_nanos, Ordering::SeqCst)
            .saturating_add(delta_nanos)
    }

    /// Sets the absolute reading. Callers are responsible for keeping the
    /// sequence monotonic.
    pub fn set(&self, nanos: u64) {
        self.nanos.store(nanos, Ordering::SeqCst);
    }
}

impl Clock for ManualClock {
    fn now_nanos(&self) -> u64 {
        self.nanos.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_only_moves_when_advanced() {
        let clock = ManualClock::new(100);
        assert_eq!(clock.now_nanos(), 100);
        assert_eq!(clock.now_nanos(), 100);
        assert_eq!(clock.advance(50), 150);
        assert_eq!(clock.now_nanos(), 150);
        clock.set(10);
        assert_eq!(clock.now_nanos(), 10);
    }

    #[test]
    fn monotonic_clock_is_monotonic() {
        let clock = MonotonicClock::new();
        let a = clock.now_nanos();
        let b = clock.now_nanos();
        assert!(b >= a);
    }
}
