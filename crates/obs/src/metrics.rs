//! Atomic metric primitives: counters, gauges, log-linear histograms,
//! and a name-keyed registry.
//!
//! Every update is a single atomic operation — no lock sits on any hot
//! path. The registry's maps are only locked when a handle is first
//! resolved; call sites that care cache the returned `Arc`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// Linear sub-buckets per power-of-two range (log-linear histogram).
/// Eight sub-buckets bound the relative quantile error at 12.5%, so
/// nearby percentiles (p50 vs p99) land in distinct buckets instead of
/// saturating one coarse power-of-two bucket.
pub const SUB_BUCKETS: usize = 8;

const SUB_BITS: u32 = SUB_BUCKETS.trailing_zeros();

/// Number of log-linear histogram buckets. Values below [`SUB_BUCKETS`]
/// get one bucket each; every power-of-two range `[2^k, 2^(k+1))` above
/// that is split into [`SUB_BUCKETS`] equal-width linear sub-buckets, up
/// to the full `u64` range.
pub const BUCKETS: usize = SUB_BUCKETS + (64 - SUB_BITS as usize) * SUB_BUCKETS;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Raises the counter to `value` if it is below it (high-water-mark
    /// semantics).
    pub fn record_max(&self, value: u64) {
        self.value.fetch_max(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An atomic `f64` gauge (last-write-wins).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A gauge starting at `0.0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed log-linear bucket histogram over `u64` values (typically
/// microseconds): each power-of-two range is split into
/// [`SUB_BUCKETS`] equal-width linear sub-buckets, bounding the relative
/// quantile error at `1/SUB_BUCKETS` (12.5%).
///
/// Quantiles are conservative upper bounds: `quantile_upper(0.95) ==
/// 1151` means "95% of observations were ≤ 1151".
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value falls into. Values below [`SUB_BUCKETS`]
    /// map to their own bucket; above that, the exponent picks the
    /// power-of-two range and the [`SUB_BITS`] bits below the leading one
    /// pick the linear sub-bucket within it.
    pub fn bucket_index(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let exp = 63 - value.leading_zeros();
        let sub = ((value >> (exp - SUB_BITS)) & (SUB_BUCKETS as u64 - 1)) as usize;
        SUB_BUCKETS + (exp - SUB_BITS) as usize * SUB_BUCKETS + sub
    }

    /// Inclusive upper bound of a bucket, reported as the conservative
    /// quantile estimate.
    pub fn bucket_upper(index: usize) -> u64 {
        let index = index.min(BUCKETS - 1);
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let exp = (index - SUB_BUCKETS) as u32 / SUB_BUCKETS as u32 + SUB_BITS;
        let sub = ((index - SUB_BUCKETS) % SUB_BUCKETS) as u128;
        let width = 1u128 << (exp - SUB_BITS);
        let upper = (1u128 << exp) + (sub + 1) * width - 1;
        u64::try_from(upper).unwrap_or(u64::MAX)
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (zero when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean observation (zero when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Per-bucket counts.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|bucket| bucket.load(Ordering::Relaxed))
            .collect()
    }

    /// Conservative upper bound of the `q`-quantile (`0.0 ..= 1.0`) over
    /// the current bucket counts. Zero when empty.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        let buckets = self.bucket_counts();
        let total: u64 = buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = (q * total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &count) in buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bucket_upper(i);
            }
        }
        Self::bucket_upper(BUCKETS - 1)
    }

    /// A point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self.bucket_counts(),
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
}

/// Name-keyed registry of counters, gauges and histograms.
///
/// Handles are `Arc`-shared: resolving the same name twice returns the
/// same primitive, so concurrent updates from different call sites
/// accumulate into one value.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self
            .counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
        {
            return Arc::clone(c);
        }
        let mut map = self
            .counters
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self
            .gauges
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
        {
            return Arc::clone(g);
        }
        let mut map = self.gauges.write().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self
            .histograms
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
        {
            return Arc::clone(h);
        }
        let mut map = self
            .histograms
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// A sorted snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A sorted point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// `(name, snapshot)` per histogram, name-sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_log_linear() {
        // Small values get exact buckets.
        for v in 0..16u64 {
            assert_eq!(Histogram::bucket_index(v), v as usize, "value {v}");
            assert_eq!(Histogram::bucket_upper(v as usize), v);
        }
        // 1024 opens the [2^10, 2^11) range: 8 sub-buckets of width 128.
        assert_eq!(Histogram::bucket_index(1024), 64);
        assert_eq!(Histogram::bucket_index(1151), 64);
        assert_eq!(Histogram::bucket_index(1152), 65);
        assert_eq!(Histogram::bucket_upper(64), 1151);
        assert_eq!(Histogram::bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(Histogram::bucket_upper(BUCKETS - 1), u64::MAX);
        for i in 0..BUCKETS - 1 {
            assert!(Histogram::bucket_upper(i) < Histogram::bucket_upper(i + 1));
        }
        // Every value lands in a bucket whose bounds contain it, with
        // relative error at most 1/SUB_BUCKETS.
        let mut v = 1u64;
        while v < u64::MAX / 3 {
            let idx = Histogram::bucket_index(v);
            let upper = Histogram::bucket_upper(idx);
            assert!(upper >= v, "upper({idx}) = {upper} < {v}");
            assert!(
                upper - v <= v / SUB_BUCKETS as u64 + 1,
                "bucket too coarse at {v}: upper {upper}"
            );
            v = v.saturating_mul(3) / 2 + 1;
        }
    }

    #[test]
    fn histogram_quantiles_are_ordered_upper_bounds() {
        let h = Histogram::new();
        for v in [10u64, 20, 50, 100, 400, 900, 2_000, 9_000, 40_000, 100_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.max(), 100_000);
        assert!(h.mean() > 0.0);
        let p50 = h.quantile_upper(0.50);
        let p95 = h.quantile_upper(0.95);
        let p99 = h.quantile_upper(0.99);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p99 >= 100_000 >> 1);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile_upper(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn counter_and_gauge_accumulate() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        c.record_max(3);
        assert_eq!(c.get(), 5);
        c.record_max(9);
        assert_eq!(c.get(), 9);
        let g = Gauge::new();
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn registry_shares_handles_by_name() {
        let r = MetricsRegistry::new();
        r.counter("a").add(2);
        r.counter("a").add(3);
        r.gauge("g").set(7.0);
        r.histogram("h").observe(42);
        assert_eq!(r.counter("a").get(), 5);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("a".to_string(), 5)]);
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 1);
    }
}
