//! Atomic metric primitives: counters, gauges, power-of-two histograms,
//! and a name-keyed registry.
//!
//! Every update is a single atomic operation — no lock sits on any hot
//! path. The registry's maps are only locked when a handle is first
//! resolved; call sites that care cache the returned `Arc`.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, PoisonError, RwLock};

/// Number of power-of-two histogram buckets. Bucket `i` covers
/// `[2^i, 2^(i+1))` (bucket 0 also absorbs zero), so 40 buckets of
/// microseconds span up to ~12 days — far beyond any deadline.
pub const BUCKETS: usize = 40;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta`.
    pub fn add(&self, delta: u64) {
        self.value.fetch_add(delta, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Raises the counter to `value` if it is below it (high-water-mark
    /// semantics).
    pub fn record_max(&self, value: u64) {
        self.value.fetch_max(value, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// An atomic `f64` gauge (last-write-wins).
#[derive(Debug, Default)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Gauge {
    /// A gauge starting at `0.0`.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge.
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }
}

/// A fixed power-of-two bucket histogram over `u64` values (typically
/// microseconds).
///
/// Quantiles are conservative upper bounds: `quantile_upper(0.95) ==
/// 2047` means "95% of observations were ≤ 2047".
#[derive(Debug)]
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// The bucket index a value falls into.
    pub fn bucket_index(value: u64) -> usize {
        let idx = 63 - (value | 1).leading_zeros() as usize;
        idx.min(BUCKETS - 1)
    }

    /// Upper bound of a bucket, reported as the conservative quantile
    /// estimate.
    pub fn bucket_upper(index: usize) -> u64 {
        (1u64 << (index.min(BUCKETS - 1) + 1)) - 1
    }

    /// Records one observation.
    pub fn observe(&self, value: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observations.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Largest observation (zero when empty).
    pub fn max(&self) -> u64 {
        self.max.load(Ordering::Relaxed)
    }

    /// Mean observation (zero when empty).
    pub fn mean(&self) -> f64 {
        let count = self.count();
        if count == 0 {
            0.0
        } else {
            self.sum() as f64 / count as f64
        }
    }

    /// Per-bucket counts.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Conservative upper bound of the `q`-quantile (`0.0 ..= 1.0`) over
    /// the current bucket counts. Zero when empty.
    pub fn quantile_upper(&self, q: f64) -> u64 {
        let buckets = self.bucket_counts();
        let total: u64 = buckets.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = (q * total as f64).ceil() as u64;
        let mut seen = 0u64;
        for (i, &count) in buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Self::bucket_upper(i);
            }
        }
        Self::bucket_upper(BUCKETS - 1)
    }

    /// A point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self.bucket_counts(),
            count: self.count(),
            sum: self.sum(),
            max: self.max(),
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts.
    pub counts: Vec<u64>,
    /// Total observations.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Largest observation.
    pub max: u64,
}

/// Name-keyed registry of counters, gauges and histograms.
///
/// Handles are `Arc`-shared: resolving the same name twice returns the
/// same primitive, so concurrent updates from different call sites
/// accumulate into one value.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        if let Some(c) = self
            .counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
        {
            return Arc::clone(c);
        }
        let mut map = self
            .counters
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        if let Some(g) = self
            .gauges
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
        {
            return Arc::clone(g);
        }
        let mut map = self.gauges.write().unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        if let Some(h) = self
            .histograms
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .get(name)
        {
            return Arc::clone(h);
        }
        let mut map = self
            .histograms
            .write()
            .unwrap_or_else(PoisonError::into_inner);
        Arc::clone(map.entry(name.to_string()).or_default())
    }

    /// A sorted snapshot of every registered metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = self
            .counters
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, c)| (name.clone(), c.get()))
            .collect();
        let gauges = self
            .gauges
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, g)| (name.clone(), g.get()))
            .collect();
        let histograms = self
            .histograms
            .read()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, h)| (name.clone(), h.snapshot()))
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }
}

/// A sorted point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// `(name, value)` per counter, name-sorted.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` per gauge, name-sorted.
    pub gauges: Vec<(String, f64)>,
    /// `(name, snapshot)` per histogram, name-sorted.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_are_monotone_powers_of_two() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 0);
        assert_eq!(Histogram::bucket_index(2), 1);
        assert_eq!(Histogram::bucket_index(3), 1);
        assert_eq!(Histogram::bucket_index(4), 2);
        assert_eq!(Histogram::bucket_index(1024), 10);
        assert_eq!(Histogram::bucket_index(u64::MAX), BUCKETS - 1);
        for i in 0..BUCKETS - 1 {
            assert!(Histogram::bucket_upper(i) < Histogram::bucket_upper(i + 1));
        }
    }

    #[test]
    fn histogram_quantiles_are_ordered_upper_bounds() {
        let h = Histogram::new();
        for v in [10u64, 20, 50, 100, 400, 900, 2_000, 9_000, 40_000, 100_000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.max(), 100_000);
        assert!(h.mean() > 0.0);
        let p50 = h.quantile_upper(0.50);
        let p95 = h.quantile_upper(0.95);
        let p99 = h.quantile_upper(0.99);
        assert!(p50 <= p95 && p95 <= p99);
        assert!(p99 >= 100_000 >> 1);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = Histogram::new();
        assert_eq!(h.quantile_upper(0.5), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn counter_and_gauge_accumulate() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        c.record_max(3);
        assert_eq!(c.get(), 5);
        c.record_max(9);
        assert_eq!(c.get(), 9);
        let g = Gauge::new();
        g.set(2.5);
        assert_eq!(g.get(), 2.5);
    }

    #[test]
    fn registry_shares_handles_by_name() {
        let r = MetricsRegistry::new();
        r.counter("a").add(2);
        r.counter("a").add(3);
        r.gauge("g").set(7.0);
        r.histogram("h").observe(42);
        assert_eq!(r.counter("a").get(), 5);
        let snap = r.snapshot();
        assert_eq!(snap.counters, vec![("a".to_string(), 5)]);
        assert_eq!(snap.gauges.len(), 1);
        assert_eq!(snap.histograms[0].1.count, 1);
    }
}
