//! Span guards: RAII timing scopes with per-thread nesting depth.
//!
//! `obs::span("serve.batch")` opens a span; dropping the returned guard
//! closes it and publishes one journal record. Nesting is tracked with a
//! thread-local depth counter, which is what lets the chrome-trace
//! exporter reconstruct the hierarchy without parent pointers.
//!
//! When no collector is installed the guard is an empty `Option` and the
//! whole open/close pair costs one relaxed atomic load.

use std::cell::Cell;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

use crate::Collector;

/// 1-based observability thread ids, assigned on first use per thread.
static NEXT_THREAD_ID: AtomicU32 = AtomicU32::new(1);

thread_local! {
    /// This thread's observability id; 0 means "not assigned yet".
    static THREAD_ID: Cell<u32> = const { Cell::new(0) };
    /// Current span nesting depth on this thread.
    static SPAN_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// This thread's stable observability id (1-based, assigned lazily).
pub fn thread_id() -> u32 {
    THREAD_ID.with(|cell| {
        let id = cell.get();
        if id != 0 {
            return id;
        }
        let id = NEXT_THREAD_ID.fetch_add(1, Ordering::Relaxed);
        cell.set(id);
        id
    })
}

/// Opens a span against `collector`, capturing start time, thread and
/// depth; used by the crate-level `span()` free function.
pub(crate) fn open(collector: Arc<Collector>, name: &str) -> SpanGuard {
    let name_id = collector.intern(name);
    let start = collector.now_nanos();
    let thread = thread_id();
    let depth = SPAN_DEPTH.with(|d| {
        let depth = d.get();
        d.set(depth + 1);
        depth
    });
    SpanGuard {
        inner: Some(ActiveSpan {
            collector,
            name_id,
            start,
            thread,
            depth,
        }),
    }
}

#[derive(Debug)]
struct ActiveSpan {
    collector: Arc<Collector>,
    name_id: u32,
    start: u64,
    thread: u32,
    depth: u32,
}

/// RAII guard for an open span. Dropping it records the span; a guard
/// created with no collector installed does nothing.
///
/// Bind it (`let _span = obs::span(...)`) — `let _ = ...` drops
/// immediately and measures nothing.
#[must_use = "binding the guard defines the span's extent; `let _ = ...` closes it immediately"]
#[derive(Debug, Default)]
pub struct SpanGuard {
    inner: Option<ActiveSpan>,
}

impl SpanGuard {
    /// A guard that measures nothing (used when observability is off).
    pub(crate) fn disabled() -> Self {
        Self { inner: None }
    }

    /// Whether this guard is actually recording.
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(span) = self.inner.take() {
            SPAN_DEPTH.with(|d| d.set(d.get().saturating_sub(1)));
            let end = span.collector.now_nanos();
            span.collector
                .finish_span(span.name_id, span.start, end, span.depth, span.thread);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_ids_are_stable_per_thread_and_distinct_across() {
        let here = thread_id();
        assert_eq!(thread_id(), here);
        let other = std::thread::spawn(thread_id).join().unwrap();
        assert_ne!(here, other);
        assert!(here >= 1 && other >= 1);
    }

    #[test]
    fn disabled_guard_records_nothing() {
        let guard = SpanGuard::disabled();
        assert!(!guard.is_recording());
        drop(guard);
    }
}
