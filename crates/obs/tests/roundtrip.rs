//! Round-trip tests for the obs crate: deterministic span timing through
//! a ManualClock, chrome-trace export parsed back with serde_json,
//! journal wraparound, concurrent counters, and the disabled fast path.

use std::sync::Arc;

use obs::{
    ChromeTraceSubscriber, Clock, Collector, Event, EventKind, HumanSubscriber,
    JsonLinesSubscriber, ManualClock,
};
use serde_json::Value;

fn manual_collector(clock: &Arc<ManualClock>) -> Collector {
    Collector::with_clock(Arc::clone(clock) as Arc<dyn Clock>)
}

#[test]
fn nested_spans_have_exact_durations_and_depths() {
    let clock = Arc::new(ManualClock::new(0));
    let guard = obs::install(manual_collector(&clock));
    {
        let _outer = obs::span!("train.epoch");
        clock.advance(100);
        {
            let _inner = obs::span!("train.batch");
            clock.advance(40);
        }
        clock.advance(10);
    }
    let events = guard.collector().events();
    assert_eq!(events.len(), 2);
    // Inner closes first, so it journals first.
    let inner = &events[0];
    let outer = &events[1];
    assert_eq!(inner.name, "train.batch");
    assert_eq!(inner.depth, 1);
    assert_eq!(inner.start_ns, 100);
    assert_eq!(inner.end_ns, 140);
    assert_eq!(outer.name, "train.epoch");
    assert_eq!(outer.depth, 0);
    assert_eq!(outer.start_ns, 0);
    assert_eq!(outer.end_ns, 150);
    // Containment: the inner span sits inside the outer on one thread.
    assert_eq!(inner.thread, outer.thread);
    assert!(outer.start_ns <= inner.start_ns && inner.end_ns <= outer.end_ns);
}

#[test]
fn chrome_trace_round_trips_through_a_real_json_parser() {
    let clock = Arc::new(ManualClock::new(0));
    let guard = obs::install(manual_collector(&clock));
    {
        let _req = obs::span!("serve.request");
        clock.advance(2_000_000); // 2 ms
    }
    obs::gauge_set("serve.queue_depth", 3.0);
    let doc = guard.collector().chrome_trace();
    drop(guard);

    let parsed: Value = serde_json::from_str(&doc).expect("chrome trace must be valid JSON");
    let events = parsed["traceEvents"]
        .as_array()
        .expect("traceEvents array");
    assert_eq!(events.len(), 2);
    let span = &events[0];
    assert_eq!(span["name"].as_str(), Some("serve.request"));
    assert_eq!(span["ph"].as_str(), Some("X"));
    assert_eq!(span["pid"].as_i64(), Some(1));
    // 2 ms expressed in chrome-trace microseconds.
    assert!((span["dur"].as_f64().unwrap() - 2000.0).abs() < 1e-9);
    let gauge = &events[1];
    assert_eq!(gauge["ph"].as_str(), Some("C"));
    assert!((gauge["args"]["value"].as_f64().unwrap() - 3.0).abs() < 1e-12);
}

#[test]
fn json_lines_subscriber_emits_parseable_objects() {
    let clock = Arc::new(ManualClock::new(50));
    let subscriber = Arc::new(JsonLinesSubscriber::new());
    let guard = obs::install(
        manual_collector(&clock).with_subscriber(Arc::clone(&subscriber) as Arc<dyn obs::Subscriber>),
    );
    {
        let _span = obs::span!("store.save");
        clock.advance(7);
    }
    obs::gauge_set("train.loss", 0.25);
    drop(guard);

    let lines = subscriber.lines();
    assert_eq!(lines.len(), 2);
    let span: Value = serde_json::from_str(&lines[0]).expect("span line parses");
    assert_eq!(span["name"].as_str(), Some("store.save"));
    assert_eq!(span["kind"].as_str(), Some("span"));
    assert_eq!(span["start_ns"].as_u64(), Some(50));
    assert_eq!(span["end_ns"].as_u64(), Some(57));
    let gauge: Value = serde_json::from_str(&lines[1]).expect("gauge line parses");
    assert_eq!(gauge["kind"].as_str(), Some("gauge"));
    assert!((gauge["value"].as_f64().unwrap() - 0.25).abs() < 1e-12);
}

#[test]
fn human_subscriber_indents_nested_spans() {
    let clock = Arc::new(ManualClock::new(0));
    let subscriber = Arc::new(HumanSubscriber::new());
    let guard = obs::install(
        manual_collector(&clock).with_subscriber(Arc::clone(&subscriber) as Arc<dyn obs::Subscriber>),
    );
    {
        let _outer = obs::span!("pipeline.stage.train");
        {
            let _inner = obs::span!("train.epoch");
            clock.advance(1_000_000);
        }
    }
    drop(guard);
    let lines = subscriber.lines();
    assert_eq!(lines.len(), 2);
    assert!(lines[0].starts_with("  train.epoch "), "got: {}", lines[0]);
    assert!(
        lines[1].starts_with("pipeline.stage.train "),
        "got: {}",
        lines[1]
    );
}

#[test]
fn chrome_trace_subscriber_matches_collector_journal() {
    let clock = Arc::new(ManualClock::new(0));
    let subscriber = Arc::new(ChromeTraceSubscriber::new());
    let guard = obs::install(
        manual_collector(&clock).with_subscriber(Arc::clone(&subscriber) as Arc<dyn obs::Subscriber>),
    );
    for _ in 0..3 {
        let _span = obs::span!("ms.generate_dataset");
        clock.advance(10);
    }
    let from_journal = guard.collector().chrome_trace();
    drop(guard);
    assert_eq!(subscriber.len(), 3);
    assert_eq!(subscriber.to_json(), from_journal);
}

#[test]
fn journal_wraparound_keeps_newest_and_counts_everything() {
    let clock = Arc::new(ManualClock::new(0));
    let guard = obs::install(manual_collector(&clock).with_journal_capacity(8));
    for _ in 0..20 {
        let _span = obs::span!("wrap");
        clock.advance(1);
    }
    let collector = guard.collector();
    assert_eq!(collector.journal_recorded(), 20);
    assert_eq!(collector.journal_dropped(), 0);
    let events = collector.events();
    assert_eq!(events.len(), 8);
    // The newest 8 spans ended at nanos 13..=20.
    assert_eq!(events.first().unwrap().end_ns, 13);
    assert_eq!(events.last().unwrap().end_ns, 20);
}

#[test]
fn concurrent_counter_updates_are_exact() {
    let clock = Arc::new(ManualClock::new(0));
    let guard = obs::install(manual_collector(&clock));
    let mut handles = Vec::new();
    for _ in 0..8 {
        handles.push(std::thread::spawn(|| {
            for _ in 0..1000 {
                obs::counter_add("stress.count", 1);
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    assert_eq!(guard.collector().counter("stress.count").get(), 8000);
}

#[test]
fn disabled_path_records_nothing_anywhere() {
    // No collector installed in this scope: everything must be inert.
    {
        let span = obs::span("ghost");
        assert!(!span.is_recording());
    }
    obs::counter_add("ghost.counter", 5);
    obs::gauge_set("ghost.gauge", 1.0);
    assert!(obs::active().is_none());

    // Installing afterwards starts from a clean slate.
    let clock = Arc::new(ManualClock::new(0));
    let guard = obs::install(manual_collector(&clock));
    assert!(guard.collector().events().is_empty());
    assert!(guard.collector().metrics().counters.is_empty());
}

#[test]
fn spans_from_multiple_threads_carry_distinct_thread_ids() {
    let clock = Arc::new(ManualClock::new(0));
    let guard = obs::install(manual_collector(&clock));
    let mut handles = Vec::new();
    for _ in 0..4 {
        handles.push(std::thread::spawn(|| {
            let _span = obs::span!("threaded");
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let events: Vec<Event> = guard.collector().events();
    assert_eq!(events.len(), 4);
    let mut threads: Vec<u32> = events.iter().map(|e| e.thread).collect();
    threads.sort_unstable();
    threads.dedup();
    assert_eq!(threads.len(), 4, "each thread gets its own id");
    assert!(events.iter().all(|e| e.kind == EventKind::Span));
}

#[test]
fn install_guard_serializes_sessions() {
    // Two sequential installs must not see each other's data; the gate
    // also blocks a second installer while the first guard lives (checked
    // implicitly by every test in this binary running with --test-threads
    // defaulting to parallel).
    let clock = Arc::new(ManualClock::new(0));
    {
        let guard = obs::install(manual_collector(&clock));
        obs::counter_add("session", 1);
        assert_eq!(guard.collector().counter("session").get(), 1);
    }
    {
        let guard = obs::install(manual_collector(&clock));
        assert_eq!(
            guard.collector().counter("session").get(),
            0,
            "fresh collector starts empty"
        );
    }
}
