//! Embedded-platform performance/energy model.
//!
//! Substitutes for the paper's NVIDIA Jetson Nano / TX2 measurement
//! hardware (Table 2) and the Intel i7-8565U used for the NMR timing
//! claims. The model is analytical: a device is characterized by its
//! arithmetic peak (cores × FLOPs/cycle × clock), an empirical efficiency
//! factor for small-batch ANN inference, a framework dispatch overhead
//! per sample, and an active power draw. Execution estimates follow
//!
//! ```text
//! time   = n · (2 · MACs / (peak · efficiency) + overhead)
//! energy = time · active_power
//! ```
//!
//! Peak figures come from the public device specs; efficiency and power
//! constants are calibrated so the *shape* of the paper's Table 2 (GPU
//! 4.8–7.1× faster than CPU, 5.0–6.3× less energy, ~5–7 W, TX2-GPU ≈
//! 2.1× Nano-GPU) is reproduced. This is a documented model, not silicon
//! (DESIGN.md §2).
//!
//! # Example
//!
//! ```
//! use platform::{estimate, Device, Workload};
//!
//! let workload = Workload::new("table1-net", 2_262_000, 29_298);
//! let cpu = estimate(&Device::jetson_nano_cpu(), &workload, 21_600);
//! let gpu = estimate(&Device::jetson_nano_gpu(), &workload, 21_600);
//! assert!(cpu.seconds > gpu.seconds);
//! assert!(cpu.energy_joules > gpu.energy_joules);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod overlay;

use serde::{Deserialize, Serialize};

/// Whether a device is a CPU or a GPU (affects nothing but reporting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceKind {
    /// A general-purpose CPU.
    Cpu,
    /// A SIMT GPU.
    Gpu,
}

impl std::fmt::Display for DeviceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeviceKind::Cpu => f.write_str("CPU"),
            DeviceKind::Gpu => f.write_str("GPU"),
        }
    }
}

/// An execution-platform description.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Device {
    /// Display name, e.g. `"Jetson Nano"`.
    pub name: String,
    /// CPU or GPU.
    pub kind: DeviceKind,
    /// Number of cores (CPU cores or CUDA cores).
    pub cores: u32,
    /// FLOPs per core per cycle (FMA counts as 2).
    pub flops_per_core_per_cycle: f64,
    /// Clock frequency in Hz.
    pub frequency_hz: f64,
    /// Fraction of peak sustained on small-batch ANN inference.
    pub efficiency: f64,
    /// Per-sample framework dispatch overhead in seconds.
    pub overhead_s: f64,
    /// Average power draw under this workload, in watts.
    pub active_power_w: f64,
}

impl Device {
    /// Creates a device description.
    ///
    /// # Panics
    ///
    /// Panics if any quantity is non-positive or non-finite (presets are
    /// static data; invalid values are programming errors).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        kind: DeviceKind,
        cores: u32,
        flops_per_core_per_cycle: f64,
        frequency_hz: f64,
        efficiency: f64,
        overhead_s: f64,
        active_power_w: f64,
    ) -> Self {
        assert!(cores > 0, "cores must be positive");
        for (label, v) in [
            ("flops/cycle", flops_per_core_per_cycle),
            ("frequency", frequency_hz),
            ("efficiency", efficiency),
            ("power", active_power_w),
        ] {
            assert!(v.is_finite() && v > 0.0, "{label} must be positive, got {v}");
        }
        assert!(overhead_s >= 0.0 && overhead_s.is_finite(), "overhead");
        Self {
            name: name.into(),
            kind,
            cores,
            flops_per_core_per_cycle,
            frequency_hz,
            efficiency,
            overhead_s,
            active_power_w,
        }
    }

    /// Theoretical peak in FLOP/s.
    pub fn peak_flops(&self) -> f64 {
        self.cores as f64 * self.flops_per_core_per_cycle * self.frequency_hz
    }

    /// Sustained throughput in MAC/s under the efficiency factor.
    pub fn sustained_macs_per_sec(&self) -> f64 {
        self.peak_flops() * self.efficiency / 2.0
    }

    /// The quad-core Cortex-A57 CPU of the Jetson Nano.
    pub fn jetson_nano_cpu() -> Self {
        Self::new(
            "Jetson Nano (CPU)",
            DeviceKind::Cpu,
            4,
            8.0,
            1.43e9,
            0.0705,
            1e-5,
            5.03,
        )
    }

    /// The 128-CUDA-core Maxwell GPU of the Jetson Nano.
    pub fn jetson_nano_gpu() -> Self {
        Self::new(
            "Jetson Nano (GPU)",
            DeviceKind::Gpu,
            128,
            2.0,
            0.9216e9,
            0.068,
            1e-5,
            4.77,
        )
    }

    /// The quad-core Cortex-A57 (+ Denver 2) CPU of the Jetson TX2.
    pub fn jetson_tx2_cpu() -> Self {
        Self::new(
            "Jetson TX2 (CPU)",
            DeviceKind::Cpu,
            6,
            8.0,
            2.0e9,
            0.047,
            1e-5,
            5.92,
        )
    }

    /// The 256-CUDA-core Pascal GPU of the Jetson TX2.
    pub fn jetson_tx2_gpu() -> Self {
        Self::new(
            "Jetson TX2 (GPU)",
            DeviceKind::Gpu,
            256,
            2.0,
            1.3e9,
            0.052,
            1e-5,
            6.68,
        )
    }

    /// The Intel i7-8565U laptop CPU of the paper's NMR timing study
    /// (1.8 GHz base, AVX2). The large per-sample overhead models the
    /// Keras/TensorFlow dispatch cost that dominates tiny networks —
    /// the paper's 0.9 ms per spectrum.
    pub fn desktop_i7_cpu() -> Self {
        Self::new(
            "Intel i7-8565U (CPU)",
            DeviceKind::Cpu,
            4,
            32.0,
            1.8e9,
            0.10,
            8.5e-4,
            15.0,
        )
    }

    /// All four Jetson presets in Table 2 order:
    /// Nano CPU, Nano GPU, TX2 CPU, TX2 GPU.
    pub fn jetson_presets() -> Vec<Device> {
        vec![
            Self::jetson_nano_cpu(),
            Self::jetson_nano_gpu(),
            Self::jetson_tx2_cpu(),
            Self::jetson_tx2_gpu(),
        ]
    }
}

/// An inference workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    /// Display name.
    pub name: String,
    /// Multiply–accumulate operations per inference.
    pub macs_per_inference: u64,
    /// Parameter count (memory footprint proxy).
    pub parameters: usize,
}

impl Workload {
    /// Creates a workload description.
    pub fn new(name: impl Into<String>, macs_per_inference: u64, parameters: usize) -> Self {
        Self {
            name: name.into(),
            macs_per_inference,
            parameters,
        }
    }

    /// Derives the workload of a trained network.
    pub fn from_network(name: impl Into<String>, network: &neural::Network) -> Self {
        Self {
            name: name.into(),
            macs_per_inference: network.macs_per_inference(),
            parameters: network.param_count(),
        }
    }
}

/// The result of an execution estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Execution {
    /// Wall-clock time in seconds.
    pub seconds: f64,
    /// Average power draw in watts.
    pub power_watts: f64,
    /// Energy in joules.
    pub energy_joules: f64,
}

/// Estimates executing `n_samples` inferences of `workload` on `device`.
pub fn estimate(device: &Device, workload: &Workload, n_samples: u64) -> Execution {
    let compute = 2.0 * workload.macs_per_inference as f64 / (device.peak_flops() * device.efficiency);
    let seconds = n_samples as f64 * (compute + device.overhead_s);
    Execution {
        seconds,
        power_watts: device.active_power_w,
        energy_joules: seconds * device.active_power_w,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table 1 network workload: ~2.26 M MACs, 29 298 params.
    fn table1_workload() -> Workload {
        Workload::new("table1", 2_262_000, 29_298)
    }

    #[test]
    fn table2_shape_gpu_speedup_in_paper_range() {
        let w = table1_workload();
        let n = 21_600;
        let nano_cpu = estimate(&Device::jetson_nano_cpu(), &w, n);
        let nano_gpu = estimate(&Device::jetson_nano_gpu(), &w, n);
        let tx2_cpu = estimate(&Device::jetson_tx2_cpu(), &w, n);
        let tx2_gpu = estimate(&Device::jetson_tx2_gpu(), &w, n);
        // Paper: 4.8x - 7.1x execution-time improvement GPU vs CPU.
        let nano_speedup = nano_cpu.seconds / nano_gpu.seconds;
        let tx2_speedup = tx2_cpu.seconds / tx2_gpu.seconds;
        assert!(
            (4.0..8.0).contains(&nano_speedup),
            "nano speedup {nano_speedup}"
        );
        assert!((4.0..8.5).contains(&tx2_speedup), "tx2 speedup {tx2_speedup}");
    }

    #[test]
    fn table2_shape_energy_improvement() {
        let w = table1_workload();
        let n = 21_600;
        for (cpu, gpu) in [
            (Device::jetson_nano_cpu(), Device::jetson_nano_gpu()),
            (Device::jetson_tx2_cpu(), Device::jetson_tx2_gpu()),
        ] {
            let c = estimate(&cpu, &w, n);
            let g = estimate(&gpu, &w, n);
            let ratio = c.energy_joules / g.energy_joules;
            // Paper: 5.0x - 6.3x energy improvement.
            assert!((3.5..8.0).contains(&ratio), "energy ratio {ratio}");
        }
    }

    #[test]
    fn table2_absolute_times_are_in_paper_ballpark() {
        let w = table1_workload();
        let n = 21_600;
        let cases = [
            (Device::jetson_nano_cpu(), 30.19),
            (Device::jetson_nano_gpu(), 6.34),
            (Device::jetson_tx2_cpu(), 21.64),
            (Device::jetson_tx2_gpu(), 3.03),
        ];
        for (device, paper_seconds) in cases {
            let run = estimate(&device, &w, n);
            let ratio = run.seconds / paper_seconds;
            assert!(
                (0.5..2.0).contains(&ratio),
                "{}: model {:.2}s vs paper {paper_seconds}s",
                device.name,
                run.seconds
            );
        }
    }

    #[test]
    fn tx2_gpu_scales_roughly_2x_over_nano_gpu() {
        let w = table1_workload();
        let nano = estimate(&Device::jetson_nano_gpu(), &w, 21_600);
        let tx2 = estimate(&Device::jetson_tx2_gpu(), &w, 21_600);
        let scale = nano.seconds / tx2.seconds;
        // Paper: doubling CUDA cores improves performance 2.1x.
        assert!((1.5..2.8).contains(&scale), "scale {scale}");
    }

    #[test]
    fn power_levels_are_around_5w() {
        for device in Device::jetson_presets() {
            let w = table1_workload();
            let run = estimate(&device, &w, 100);
            assert!(
                (4.0..7.5).contains(&run.power_watts),
                "{} power {}",
                device.name,
                run.power_watts
            );
        }
    }

    #[test]
    fn time_scales_linearly_with_samples() {
        let w = table1_workload();
        let d = Device::jetson_nano_cpu();
        let one = estimate(&d, &w, 1_000);
        let ten = estimate(&d, &w, 10_000);
        assert!((ten.seconds / one.seconds - 10.0).abs() < 1e-9);
    }

    #[test]
    fn i7_overhead_dominates_tiny_networks() {
        // The paper's 10 532-parameter NMR CNN takes ~0.9 ms per spectrum
        // on the i7 under Keras: dispatch overhead, not arithmetic.
        let cnn = Workload::new("nmr-cnn", 10_532, 10_532);
        let run = estimate(&Device::desktop_i7_cpu(), &cnn, 1);
        assert!(
            (5e-4..1.5e-3).contains(&run.seconds),
            "per-spectrum {}",
            run.seconds
        );
    }

    #[test]
    fn workload_from_network_matches_param_count() {
        use neural::spec::{LayerSpec, NetworkSpec};
        let net = NetworkSpec::new(8)
            .layer(LayerSpec::Dense {
                units: 4,
                activation: neural::Activation::Linear,
            })
            .build(1)
            .unwrap();
        let w = Workload::from_network("n", &net);
        assert_eq!(w.parameters, 8 * 4 + 4);
        assert_eq!(w.macs_per_inference, (8 * 4 + 4) as u64);
    }

    #[test]
    #[should_panic(expected = "cores")]
    fn zero_cores_panics() {
        let _ = Device::new("bad", DeviceKind::Cpu, 0, 1.0, 1.0, 1.0, 0.0, 1.0);
    }

    #[test]
    fn peak_flops_formula() {
        let d = Device::new("x", DeviceKind::Cpu, 2, 4.0, 1e9, 0.5, 0.0, 1.0);
        assert_eq!(d.peak_flops(), 8e9);
        assert_eq!(d.sustained_macs_per_sec(), 2e9);
    }
}
