//! FPGA overlay architectures for embedded process control (paper §IV).
//!
//! The paper's discussion section argues that FPGAs suit ML-assisted
//! embedded process control, but that raw FPGA design is too expensive —
//! overlay architectures close the gap:
//!
//! * **VCGRA** — a parameterizable coarse-grained reconfigurable array
//!   whose processing elements and interconnect are tailored per
//!   application (Fricke et al., IPDPSW 2019);
//! * **soft GPGPU (FGPU)** — a soft GPU synthesized on the FPGA,
//!   achieving "an average 4.2× speedup for different workloads over an
//!   embedded ARM core with NEON support"; "further specializing
//!   increases the speedup numbers by 100×" (paper §IV refs [18]–[20]).
//!
//! Like the Jetson presets, these are documented analytical models: they
//! reproduce the *ratios* the paper reports, driven by the same
//! [`Workload`] abstraction.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{Device, DeviceKind, Execution, Workload};

/// The embedded ARM baseline of the paper's overlay comparison: a
/// Cortex-A9-class core with NEON (Zynq PS-side), the reference for the
/// 4.2× soft-GPU speedup.
pub fn arm_neon_baseline() -> Device {
    Device::new(
        "ARM Cortex-A9 + NEON",
        DeviceKind::Cpu,
        1,
        4.0, // 128-bit NEON, fp32 MAC
        0.667e9,
        0.20,
        0.0,
        1.5,
    )
}

/// A parameterizable CGRA overlay (VCGRA-style): a `rows × cols` grid of
/// processing elements, each sustaining one MAC per cycle when mapped.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CgraOverlay {
    /// Grid rows.
    pub rows: u32,
    /// Grid columns.
    pub cols: u32,
    /// Overlay clock on the FPGA fabric (Hz).
    pub frequency_hz: f64,
    /// Fraction of PEs a mapped ANN layer keeps busy (placement and
    /// routing losses).
    pub utilization: f64,
    /// Board power draw in watts.
    pub power_w: f64,
}

impl CgraOverlay {
    /// The default VCGRA configuration used in the workspace: an 8×8 PE
    /// grid at a typical 150 MHz fabric clock.
    pub fn vcgra_default() -> Self {
        Self {
            rows: 8,
            cols: 8,
            frequency_hz: 150e6,
            utilization: 0.75,
            power_w: 2.5,
        }
    }

    /// Number of processing elements.
    pub fn pe_count(&self) -> u32 {
        self.rows * self.cols
    }

    /// Sustained MAC/s of the mapped overlay.
    pub fn sustained_macs_per_sec(&self) -> f64 {
        self.pe_count() as f64 * self.frequency_hz * self.utilization
    }

    /// Estimates executing `n_samples` inferences of `workload`.
    pub fn estimate(&self, workload: &Workload, n_samples: u64) -> Execution {
        let seconds =
            n_samples as f64 * workload.macs_per_inference as f64 / self.sustained_macs_per_sec();
        Execution {
            seconds,
            power_watts: self.power_w,
            energy_joules: seconds * self.power_w,
        }
    }

    /// The overlay as a generic [`Device`] (for uniform reporting).
    pub fn as_device(&self) -> Device {
        Device::new(
            format!("VCGRA {}x{}", self.rows, self.cols),
            DeviceKind::Gpu,
            self.pe_count(),
            2.0,
            self.frequency_hz,
            self.utilization,
            0.0,
            self.power_w,
        )
    }
}

/// Specialization level of a soft GPU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SoftGpuSpecialization {
    /// The general-purpose FGPU bitstream.
    General,
    /// A bitstream specialized for persistent deep-learning kernels
    /// (paper ref [19]).
    PersistentDeepLearning,
}

/// A soft GPGPU synthesized on the FPGA fabric.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SoftGpu {
    /// Number of compute units.
    pub compute_units: u32,
    /// Processing elements per compute unit.
    pub pes_per_cu: u32,
    /// Fabric clock (Hz).
    pub frequency_hz: f64,
    /// Sustained fraction of peak for ANN kernels.
    pub efficiency: f64,
    /// Specialization level.
    pub specialization: SoftGpuSpecialization,
    /// Board power draw in watts.
    pub power_w: f64,
}

impl SoftGpu {
    /// The general-purpose FGPU configuration: calibrated to the paper's
    /// "average 4.2× speedup ... over an embedded ARM core with NEON".
    pub fn fgpu_general() -> Self {
        Self {
            compute_units: 8,
            pes_per_cu: 8,
            frequency_hz: 250e6,
            efficiency: 0.07,
            specialization: SoftGpuSpecialization::General,
            power_w: 3.0,
        }
    }

    /// The persistent-deep-learning specialization: "further specializing
    /// increases the speedup numbers by 100×" — a two-orders-of-magnitude
    /// gain from datapath and memory specialization.
    pub fn fgpu_specialized() -> Self {
        Self {
            compute_units: 32,
            pes_per_cu: 16,
            frequency_hz: 300e6,
            efficiency: 0.70,
            specialization: SoftGpuSpecialization::PersistentDeepLearning,
            power_w: 6.0,
        }
    }

    /// Sustained MAC/s.
    pub fn sustained_macs_per_sec(&self) -> f64 {
        self.compute_units as f64 * self.pes_per_cu as f64 * self.frequency_hz * self.efficiency
    }

    /// Estimates executing `n_samples` inferences of `workload`.
    pub fn estimate(&self, workload: &Workload, n_samples: u64) -> Execution {
        let seconds =
            n_samples as f64 * workload.macs_per_inference as f64 / self.sustained_macs_per_sec();
        Execution {
            seconds,
            power_watts: self.power_w,
            energy_joules: seconds * self.power_w,
        }
    }

    /// Speedup of this soft GPU over the ARM+NEON baseline on `workload`.
    pub fn speedup_over_arm(&self, workload: &Workload) -> f64 {
        let arm = crate::estimate(&arm_neon_baseline(), workload, 1_000);
        let this = self.estimate(workload, 1_000);
        arm.seconds / this.seconds
    }
}

/// How well the analytical model predicted a real serving run: the
/// modelled wall-clock for the same device/workload/sample count next to
/// the measured one.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelFit {
    /// Seconds the analytical [`crate::estimate`] predicts.
    pub modelled_seconds: f64,
    /// Seconds the serving engine actually took.
    pub measured_seconds: f64,
    /// `measured / modelled` — above 1 the model is optimistic
    /// (dispatch, queueing and memory traffic it does not see), below 1
    /// it is pessimistic.
    pub ratio: f64,
}

/// Compares a measured serving run against the analytical model for the
/// same `device`/`workload`/`n_samples`. The measurement side only needs
/// a wall-clock (e.g. derived from a `ServeMetrics` snapshot:
/// `requests_completed` samples over the driving loop's elapsed time), so
/// the platform model stays decoupled from the serving engine.
pub fn compare_measured(
    device: &Device,
    workload: &Workload,
    n_samples: u64,
    measured_seconds: f64,
) -> ModelFit {
    let modelled = crate::estimate(device, workload, n_samples);
    ModelFit {
        modelled_seconds: modelled.seconds,
        measured_seconds,
        ratio: if modelled.seconds > 0.0 {
            measured_seconds / modelled.seconds
        } else {
            f64::INFINITY
        },
    }
}

/// Why a spectral fit could not be computed. Produced at the boundary so
/// downstream consumers (e.g. a drift detector averaging fit scores) never
/// see a NaN or a division by a zero-area window.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum FitError {
    /// One of the spectra has no samples.
    Empty,
    /// Modelled and measured spectra have different lengths.
    LengthMismatch {
        /// Samples in the modelled spectrum.
        modelled: usize,
        /// Samples in the measured spectrum.
        measured: usize,
    },
    /// A spectrum contains a NaN or infinite intensity.
    NonFinite {
        /// Index of the first offending sample.
        index: usize,
    },
    /// A spectrum window has (numerically) zero total area, so it cannot
    /// be normalized — e.g. an all-zero window from a sensor blackout.
    ZeroVariance,
}

impl fmt::Display for FitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FitError::Empty => write!(f, "spectral fit: empty spectrum"),
            FitError::LengthMismatch { modelled, measured } => write!(
                f,
                "spectral fit: length mismatch (modelled {modelled}, measured {measured})"
            ),
            FitError::NonFinite { index } => {
                write!(f, "spectral fit: non-finite intensity at index {index}")
            }
            FitError::ZeroVariance => {
                write!(f, "spectral fit: zero-area window cannot be normalized")
            }
        }
    }
}

impl std::error::Error for FitError {}

/// How well a measured spectrum matches the modelled (noiseless) render
/// of the same mixture — the *shape* counterpart of [`ModelFit`]'s
/// wall-clock comparison.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpectralFit {
    /// Total-variation distance between the two area-normalized spectra,
    /// in `[0, 1]`. `0` is a perfect shape match, `1` fully disjoint.
    pub distance: f64,
    /// `1 - distance` — a fit score where `1` is perfect.
    pub score: f64,
}

/// Compares a measured spectrum against a modelled render of the same
/// mixture on the same axis, by total-variation distance between the
/// area-normalized intensity vectors.
///
/// Area normalization cancels global gain drift (detector sensitivity,
/// sample amount), so the distance responds only to *shape* changes —
/// peak broadening, mass-axis offset, attenuation-law steepening — which
/// is exactly what instrument re-characterization can repair.
///
/// Every degenerate input is rejected with a [`FitError`] instead of
/// leaking a NaN into downstream statistics.
pub fn spectral_fit(modelled: &[f64], measured: &[f64]) -> Result<SpectralFit, FitError> {
    if modelled.is_empty() || measured.is_empty() {
        return Err(FitError::Empty);
    }
    if modelled.len() != measured.len() {
        return Err(FitError::LengthMismatch {
            modelled: modelled.len(),
            measured: measured.len(),
        });
    }
    for (index, value) in modelled.iter().chain(measured.iter()).enumerate() {
        if !value.is_finite() {
            return Err(FitError::NonFinite {
                index: index % modelled.len(),
            });
        }
    }
    // Clamp sub-zero noise excursions to zero before normalizing: a
    // probability-style vector keeps the TV distance inside [0, 1].
    let area = |spectrum: &[f64]| -> f64 { spectrum.iter().map(|v| v.max(0.0)).sum() };
    let modelled_area = area(modelled);
    let measured_area = area(measured);
    if modelled_area <= f64::EPSILON || measured_area <= f64::EPSILON {
        return Err(FitError::ZeroVariance);
    }
    let distance: f64 = modelled
        .iter()
        .zip(measured.iter())
        .map(|(m, x)| (m.max(0.0) / modelled_area - x.max(0.0) / measured_area).abs())
        .sum::<f64>()
        / 2.0;
    let distance = distance.clamp(0.0, 1.0);
    Ok(SpectralFit {
        distance,
        score: 1.0 - distance,
    })
}

impl ModelFit {
    /// Whether every field of the fit is finite — callers feeding fit
    /// ratios into running statistics must check this at the boundary
    /// (a zero-second model estimate yields an infinite ratio).
    pub fn is_finite(&self) -> bool {
        self.modelled_seconds.is_finite()
            && self.measured_seconds.is_finite()
            && self.ratio.is_finite()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn matmul_workload() -> Workload {
        // A representative matrix-multiplication kernel (64x64x64).
        Workload::new("matmul64", 64 * 64 * 64, 0)
    }

    #[test]
    fn fgpu_general_hits_paper_speedup() {
        let speedup = SoftGpu::fgpu_general().speedup_over_arm(&matmul_workload());
        // Paper: average 4.2x over ARM + NEON.
        assert!((3.5..5.0).contains(&speedup), "speedup {speedup}");
    }

    #[test]
    fn specialization_reaches_two_orders_of_magnitude() {
        let general = SoftGpu::fgpu_general().speedup_over_arm(&matmul_workload());
        let special = SoftGpu::fgpu_specialized().speedup_over_arm(&matmul_workload());
        let gain = special / general;
        // Paper: "further specializing increases the speedup numbers by 100x".
        assert!((50.0..200.0).contains(&gain), "gain {gain}");
    }

    #[test]
    fn vcgra_beats_arm_on_ann_workloads() {
        let overlay = CgraOverlay::vcgra_default();
        let workload = matmul_workload();
        let arm = crate::estimate(&arm_neon_baseline(), &workload, 1_000);
        let cgra = overlay.estimate(&workload, 1_000);
        assert!(
            cgra.seconds < arm.seconds,
            "cgra {} vs arm {}",
            cgra.seconds,
            arm.seconds
        );
    }

    #[test]
    fn vcgra_device_view_is_consistent() {
        let overlay = CgraOverlay::vcgra_default();
        let device = overlay.as_device();
        assert_eq!(device.cores, overlay.pe_count());
        let ratio = device.sustained_macs_per_sec() / overlay.sustained_macs_per_sec();
        assert!((ratio - 1.0).abs() < 1e-9, "ratio {ratio}");
    }

    #[test]
    fn pe_count_and_throughput_scale() {
        let small = CgraOverlay {
            rows: 4,
            cols: 4,
            ..CgraOverlay::vcgra_default()
        };
        let large = CgraOverlay::vcgra_default();
        assert_eq!(small.pe_count(), 16);
        let ratio = large.sustained_macs_per_sec() / small.sustained_macs_per_sec();
        assert!((ratio - 4.0).abs() < 1e-9);
    }

    #[test]
    fn model_fit_ratio_reads_measured_over_modelled() {
        let device = arm_neon_baseline();
        let workload = matmul_workload();
        let modelled = crate::estimate(&device, &workload, 500);
        let fit = compare_measured(&device, &workload, 500, modelled.seconds * 2.0);
        assert!((fit.ratio - 2.0).abs() < 1e-9, "ratio {}", fit.ratio);
        assert_eq!(fit.modelled_seconds, modelled.seconds);
        let exact = compare_measured(&device, &workload, 500, modelled.seconds);
        assert!((exact.ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn spectral_fit_rejects_empty_spectra() {
        assert_eq!(spectral_fit(&[], &[]), Err(FitError::Empty));
        assert_eq!(spectral_fit(&[1.0], &[]), Err(FitError::Empty));
        assert_eq!(spectral_fit(&[], &[1.0]), Err(FitError::Empty));
    }

    #[test]
    fn spectral_fit_rejects_length_mismatch() {
        assert_eq!(
            spectral_fit(&[1.0, 2.0], &[1.0]),
            Err(FitError::LengthMismatch {
                modelled: 2,
                measured: 1
            })
        );
    }

    #[test]
    fn spectral_fit_rejects_nan_and_infinite_measurements() {
        let modelled = [1.0, 2.0, 3.0];
        assert_eq!(
            spectral_fit(&modelled, &[1.0, f64::NAN, 3.0]),
            Err(FitError::NonFinite { index: 1 })
        );
        assert_eq!(
            spectral_fit(&modelled, &[f64::INFINITY, 2.0, 3.0]),
            Err(FitError::NonFinite { index: 0 })
        );
        assert_eq!(
            spectral_fit(&[1.0, 2.0, f64::NAN], &[1.0, 2.0, 3.0]),
            Err(FitError::NonFinite { index: 2 })
        );
    }

    #[test]
    fn spectral_fit_rejects_zero_variance_windows() {
        let modelled = [1.0, 2.0, 3.0];
        // All-zero window — e.g. a sensor blackout frame.
        assert_eq!(
            spectral_fit(&modelled, &[0.0, 0.0, 0.0]),
            Err(FitError::ZeroVariance)
        );
        // All-negative noise clamps to zero area too.
        assert_eq!(
            spectral_fit(&modelled, &[-1.0, -0.5, -2.0]),
            Err(FitError::ZeroVariance)
        );
        assert_eq!(
            spectral_fit(&[0.0, 0.0, 0.0], &modelled),
            Err(FitError::ZeroVariance)
        );
    }

    #[test]
    fn spectral_fit_is_gain_invariant_and_bounded() {
        let modelled = [0.0, 1.0, 4.0, 1.0, 0.0];
        let scaled: Vec<f64> = modelled.iter().map(|v| v * 37.5).collect();
        let fit = spectral_fit(&modelled, &scaled).unwrap();
        assert!(fit.distance < 1e-12, "distance {}", fit.distance);
        assert!((fit.score - 1.0).abs() < 1e-12);

        // Fully disjoint shapes sit at the top of the range.
        let disjoint = spectral_fit(&[1.0, 0.0], &[0.0, 1.0]).unwrap();
        assert!((disjoint.distance - 1.0).abs() < 1e-12);
        assert!(disjoint.score.abs() < 1e-12);

        // A moderate shape change lands strictly inside (0, 1).
        let shifted = spectral_fit(&[0.0, 1.0, 4.0, 1.0, 0.0], &[0.0, 0.5, 3.0, 2.5, 0.0]).unwrap();
        assert!(shifted.distance > 0.0 && shifted.distance < 1.0);
    }

    #[test]
    fn model_fit_finiteness_guard() {
        let device = arm_neon_baseline();
        let workload = matmul_workload();
        let fit = compare_measured(&device, &workload, 500, 1.0);
        assert!(fit.is_finite());
        // Zero-work workload => zero modelled seconds => infinite ratio,
        // caught by the boundary guard instead of poisoning statistics.
        let degenerate = compare_measured(&device, &Workload::new("empty", 0, 0), 500, 1.0);
        assert!(!degenerate.is_finite());
        let nan = ModelFit {
            modelled_seconds: 1.0,
            measured_seconds: f64::NAN,
            ratio: f64::NAN,
        };
        assert!(!nan.is_finite());
    }

    #[test]
    fn estimates_scale_linearly() {
        let overlay = CgraOverlay::vcgra_default();
        let w = matmul_workload();
        let one = overlay.estimate(&w, 100);
        let ten = overlay.estimate(&w, 1_000);
        assert!((ten.seconds / one.seconds - 10.0).abs() < 1e-9);
        assert!(ten.energy_joules > one.energy_joules);
    }
}
