//! Online NMR reaction monitoring: follow the lithiation reaction through
//! its steady-state plateaus with IHM and a CNN trained purely on
//! augmented (synthetic) spectra — the paper's §III.B use case.
//!
//! ```sh
//! cargo run --release --example nmr_reaction_monitoring
//! ```

use chem::nmr::{lithiation_components, LITHIATION_NAMES};
use chemometrics::ihm::IhmAnalyzer;
use spectroai::pipeline::nmr::{NmrPipeline, NmrPipelineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("[setup] acquiring 300 reactor spectra and training the CNN (quick scale)...");
    let config = NmrPipelineConfig {
        augmented_spectra: 800,
        cnn_epochs: 12,
        lstm_epochs: 1,
        lstm_windows: 10,
        run_ihm: false,
        ..NmrPipelineConfig::quick_test()
    };
    let input_scale = config.input_scale;
    let mut report = NmrPipeline::new(config)?.run()?;
    println!(
        "[setup] done: CNN MSE {:.5} on the experimental run\n",
        report.cnn.mse
    );

    // Follow the run: one spectrum per plateau, CNN vs IHM vs reference.
    let analyzer = IhmAnalyzer::new(
        lithiation_components(),
        *report.experiment.spectra[0].axis(),
    )?;
    println!(
        "{:>7} {:>28} {:>28} {:>28}",
        "plateau", "reference (mol/L)", "CNN", "IHM"
    );
    let fmt = |v: &[f64]| {
        v.iter()
            .map(|x| format!("{x:.2}"))
            .collect::<Vec<_>>()
            .join(" ")
    };
    for plateau_indices in report.experiment.plateau_indices() {
        let i = plateau_indices[plateau_indices.len() / 2];
        let spectrum = &report.experiment.spectra[i];
        let scaled: Vec<f32> = spectrum
            .to_f32()
            .into_iter()
            .map(|v| v * input_scale as f32)
            .collect();
        let cnn: Vec<f64> = report
            .cnn_network
            .predict(&scaled)
            .iter()
            .map(|&v| v as f64)
            .collect();
        let ihm = analyzer.fit(spectrum)?.concentrations;
        println!(
            "{:>7} {:>28} {:>28} {:>28}",
            report.experiment.plateau[i],
            fmt(&report.experiment.reference[i]),
            fmt(&cnn),
            fmt(&ihm)
        );
    }
    println!(
        "\ncomponents: {:?} — both methods track the reference; the CNN \
         answers in microseconds, IHM in ~0.1-1 s per spectrum.",
        LITHIATION_NAMES
    );
    Ok(())
}
