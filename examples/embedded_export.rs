//! Embedded deployment: export a trained network as a portable JSON
//! artifact, estimate its footprint on the Jetson targets of the paper's
//! Table 2, and verify the artifact round-trips bit-exactly.
//!
//! ```sh
//! cargo run --release --example embedded_export
//! ```

use ms_sim::prototype::MmsPrototype;
use neural::export::ExportedNetwork;
use platform::Device;
use spectroai::eval::export_for_embedded;
use spectroai::pipeline::ms::{MsPipeline, MsPipelineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("[setup] training a small MS network (quick scale)...");
    let config = MsPipelineConfig::quick_test();
    let mut prototype = MmsPrototype::new(13);
    let report = MsPipeline::new(config)?.run(&mut prototype)?;
    println!(
        "[setup] done: {} parameters, measured MAE {:.2}%\n",
        report.network.param_count(),
        report.measured_mae * 100.0
    );

    // Export for every Table 2 target.
    println!(
        "{:<22} {:>12} {:>14} {:>14}",
        "target", "artifact", "latency", "energy"
    );
    for device in Device::jetson_presets() {
        let artifact = export_for_embedded(
            report.spec.clone(),
            &report.network,
            "mms-monitor",
            &device,
        )?;
        println!(
            "{:<22} {:>9} kB {:>11.3} ms {:>11.3} mJ",
            artifact.device_name,
            artifact.json_bytes / 1024,
            artifact.seconds_per_inference * 1e3,
            artifact.energy_per_inference_joules * 1e3,
        );
    }

    // Round-trip check: JSON -> network -> identical predictions.
    let artifact = export_for_embedded(
        report.spec.clone(),
        &report.network,
        "mms-monitor",
        &Device::jetson_nano_gpu(),
    )?;
    let json = artifact.exported.to_json()?;
    let mut restored = ExportedNetwork::from_json(&json)?.instantiate()?;
    let mut original = report.network;
    let probe = vec![0.02f32; report.spec.input_len];
    assert_eq!(original.predict(&probe), restored.predict(&probe));
    println!("\nround-trip OK: restored network reproduces the original bit-exactly.");
    Ok(())
}
