//! In-process monitoring scenario: a trained MMS network watches a
//! running chemical process whose composition slowly drifts out of
//! specification — the closed-loop use case motivating the paper's
//! Modular Chemical Production vision (§I, Figure 1).
//!
//! ```sh
//! cargo run --release --example ms_process_monitoring
//! ```

use chem::Mixture;
use ms_sim::prototype::MmsPrototype;
use spectroai::pipeline::ms::{MsPipeline, MsPipelineConfig};

/// The process specification: CO₂ fraction must stay below this limit.
const CO2_ALARM_LIMIT: f64 = 0.14;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Train the monitoring network once, up front.
    println!("[setup] training the monitoring network (quick scale)...");
    let config = MsPipelineConfig {
        training_spectra: 800,
        epochs: 5,
        ..MsPipelineConfig::quick_test()
    };
    let axis = config.axis;
    let substances = config.substances.clone();
    let mut prototype = MmsPrototype::new(7);
    let mut report = MsPipeline::new(config)?.run(&mut prototype)?;
    println!(
        "[setup] done: measured MAE {:.2}%\n",
        report.measured_mae * 100.0
    );

    // Simulate a process where a CO2 leak grows over time.
    println!("{:>5} {:>12} {:>12}  alarm", "step", "true CO2", "ANN CO2");
    let mut alarm_raised_at = None;
    for step in 0..12 {
        let leak = 0.05 + 0.025 * step as f64; // true CO2 fraction ramps up
        let mixture = Mixture::from_fractions(vec![
            ("N2".into(), 0.75 - leak),
            ("O2".into(), 0.20),
            ("CO2".into(), leak),
            ("Ar".into(), 0.05),
        ])?;
        // One online measurement, resampled to the network's axis.
        let sample = prototype.measure(&mixture)?;
        let spectrum = sample.spectrum.resampled(&axis);
        let prediction = report.network.predict(&spectrum.to_f32());
        let co2_idx = substances
            .iter()
            .position(|s| s == "CO2")
            .expect("CO2 is a task substance");
        let predicted_co2 = prediction[co2_idx] as f64;
        let alarm = predicted_co2 > CO2_ALARM_LIMIT;
        if alarm && alarm_raised_at.is_none() {
            alarm_raised_at = Some(step);
        }
        println!(
            "{step:>5} {:>11.1}% {:>11.1}%  {}",
            leak * 100.0,
            predicted_co2 * 100.0,
            if alarm { "*** ALARM ***" } else { "" }
        );
    }
    match alarm_raised_at {
        Some(step) => println!(
            "\nThe ANN raised the CO2 alarm at step {step} — closed-loop \
             control would throttle the feed here."
        ),
        None => println!("\nNo alarm raised (increase the leak ramp or training budget)."),
    }
    Ok(())
}
