//! Provenance audit: the paper's data-management story — "trace the
//! basis on which the respective data was generated ... which
//! measurements have been used to train the simulators and which data
//! has been used to train a specific network" (§III.A.1).
//!
//! ```sh
//! cargo run --release --example provenance_audit
//! ```

use datastore::Store;
use ms_sim::prototype::MmsPrototype;
use spectroai::pipeline::ms::{MsPipeline, MsPipelineConfig};
use spectroai::provenance::{collections, record_ms_run};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("[setup] running two small MS pipelines...");
    let store = Store::in_memory();
    let mut prototype = MmsPrototype::new(99);
    for run_label in ["monday-run", "tuesday-run"] {
        let report = MsPipeline::new(MsPipelineConfig::quick_test())?.run(&mut prototype)?;
        let recorded = record_ms_run(&store, &report, run_label)?;
        println!(
            "[setup] {run_label}: network {} (measured MAE {:.2}%)",
            recorded.network,
            report.measured_mae * 100.0
        );
    }

    // The audit: for every trained network, walk its lineage back to the
    // raw measurements.
    println!("\naudit: which measurements trained which network?");
    for doc in store.collection(collections::NETWORKS) {
        let run = doc
            .metadata
            .params
            .get("run")
            .cloned()
            .unwrap_or_default();
        let lineage = store.lineage(doc.id)?;
        let measurement_docs: Vec<String> = lineage
            .iter()
            .filter_map(|&id| store.get(id).ok())
            .filter(|d| d.collection == collections::MEASUREMENTS)
            .map(|d| format!("{} (by {})", d.id, d.metadata.created_by))
            .collect();
        println!(
            "  network {} [{run}] <- lineage of {} documents <- measurements: {}",
            doc.id,
            lineage.len(),
            measurement_docs.join(", ")
        );
    }

    // And forward: what was derived from Monday's measurements?
    let monday = &store.query(collections::MEASUREMENTS, "run", "monday-run")[0];
    let children = store.children(monday.id);
    println!(
        "\nforward: measurements {} fan out into {} derived documents",
        monday.id,
        children.len()
    );

    // Persist and reload to show the audit trail survives the process.
    let dir = std::env::temp_dir().join("spectroai-audit-demo");
    store.save_to_dir(&dir)?;
    let reloaded = Store::load_from_dir(&dir)?;
    println!(
        "\npersisted and reloaded: {} documents across collections {:?}",
        reloaded.len(),
        reloaded.collections()
    );
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}
