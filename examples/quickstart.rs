//! Quickstart: the complete MS toolchain in ~30 lines.
//!
//! Runs the paper's flow end to end at a CI-friendly scale: measure a
//! few calibration series on the (simulated) MMS prototype, estimate an
//! instrument simulator from them, generate labelled synthetic spectra,
//! train the Table 1 CNN, and evaluate it on freshly measured data.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use ms_sim::prototype::MmsPrototype;
use spectroai::pipeline::ms::{MsPipeline, MsPipelineConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A CI-scale configuration: coarse m/z axis, small training set.
    // `MsPipelineConfig::paper_scale()` gives the full-size experiment.
    let config = MsPipelineConfig::quick_test();
    println!(
        "task: predict fractions of {:?}",
        config.substances.iter().map(String::as_str).collect::<Vec<_>>()
    );

    // The simulated physical prototype (the hardware stand-in).
    let mut prototype = MmsPrototype::new(42);

    // Tools 1-4 in one call.
    let report = MsPipeline::new(config)?.run(&mut prototype)?;

    println!("\ninstrument estimated from {} measurements", report.characterization.measurements);
    println!("network: {} parameters", report.network.param_count());
    println!("simulated-validation MAE: {:.2}%", report.validation_mae * 100.0);
    println!("measured MAE:             {:.2}%", report.measured_mae * 100.0);
    println!("\nper-substance measured MAE:");
    for (name, mae) in report.substances.iter().zip(&report.per_substance_measured) {
        println!("  {name:<5} {:.2}%", mae * 100.0);
    }
    println!("\nNote the sim-to-real gap — the paper's central observation.");
    Ok(())
}
