//! End-to-end fault-injection drills (ISSUE acceptance criteria):
//!
//! (a) an injected NaN batch triggers checkpoint rollback + LR backoff
//!     and training still reaches its quality gate;
//! (b) an injected torn datastore write is detected via checksum and
//!     quarantined without panicking;
//! (c) an injected transient stage failure is retried with backoff and
//!     the MS pipeline completes end-to-end.
//!
//! All faults come from one deterministic, seed-free [`FaultPlan`], so
//! these drills replay identically on every run.

use std::sync::Arc;

use faultsim::{FaultEvent, FaultPlan};
use ms_sim::prototype::MmsPrototype;
use neural::guard::DivergenceCause;
use spectroai::datastore::{Metadata, Store};
use spectroai::pipeline::ms::{MsPipeline, MsPipelineConfig};
use spectroai::recovery::{RetryPolicy, StageRunner};

/// (a) + (c): one guarded pipeline run survives a poisoned training
/// batch *and* transient failures in two different stages.
#[test]
fn pipeline_survives_nan_batch_and_transient_stage_failures() {
    let mut config = MsPipelineConfig::quick_test();
    config.epochs = 5;
    let plan = Arc::new(
        FaultPlan::new()
            .with_nan_batch(1, 2)
            .with_stage_failure("calibration", 1)
            .with_stage_failure("simulate", 1),
    );
    let mut runner =
        StageRunner::new(RetryPolicy::default()).with_fault_plan(Arc::clone(&plan));
    let mut prototype = MmsPrototype::new(5);

    let report = MsPipeline::new(config)
        .unwrap()
        .run_with_recovery(&mut prototype, &mut runner)
        .unwrap();

    // (a) the NaN batch was detected, rolled back and backed off.
    assert_eq!(report.training_recovery.len(), 1);
    let event = &report.training_recovery[0];
    assert_eq!(event.epoch, 1);
    assert_eq!(event.batch, Some(2));
    assert_eq!(event.cause, DivergenceCause::NonFiniteLoss);
    assert!(event.learning_rate < 1e-3, "LR was backed off");

    // (c) both injected stage failures were retried away.
    let failed_stages: Vec<&str> = runner.log().iter().map(|a| a.stage.as_str()).collect();
    assert!(failed_stages.contains(&"calibration"));
    assert!(failed_stages.contains(&"simulate"));
    assert_eq!(runner.log().len(), 2, "exactly the injected failures");

    // Every scheduled fault actually fired.
    assert_eq!(plan.pending(), 0);
    assert_eq!(plan.events().len(), 3);
    assert!(plan
        .events()
        .contains(&FaultEvent::NanBatch { epoch: 1, batch: 2 }));

    // Training still reached the quick-scale quality gate.
    assert!(
        report.validation_mae < 0.125,
        "validation MAE {} missed the gate",
        report.validation_mae
    );
    assert!(report.measured_mae.is_finite());
    assert_eq!(
        report.calibration_samples_used, 5,
        "no degradation was needed"
    );
}

/// A calibration stage that fails beyond its whole retry budget degrades
/// to a smaller campaign instead of aborting (Figure 6's sample axis).
#[test]
fn repeated_calibration_failure_degrades_sample_count() {
    let config = MsPipelineConfig::quick_test();
    // Three injected failures against a 2-attempt budget: the first
    // calibration pass (5 samples/mixture) fails twice and exhausts its
    // retries; the degraded pass (2 samples/mixture) eats the third
    // injection, then succeeds.
    let plan = Arc::new(FaultPlan::new().with_stage_failure("calibration", 3));
    let mut runner = StageRunner::new(RetryPolicy {
        max_attempts: 2,
        ..RetryPolicy::default()
    })
    .with_fault_plan(plan);
    let mut prototype = MmsPrototype::new(5);

    let report = MsPipeline::new(config)
        .unwrap()
        .run_with_recovery(&mut prototype, &mut runner)
        .unwrap();

    assert_eq!(report.calibration_samples_used, 2);
    assert_eq!(
        runner
            .log()
            .iter()
            .filter(|a| a.stage == "calibration")
            .count(),
        3
    );
    assert!(report.validation_mae.is_finite());
}

/// (b) a torn write is caught by the CRC-32 envelope on load and the
/// damaged file is quarantined; the rest of the store survives.
#[test]
fn torn_datastore_write_is_quarantined_without_panic() {
    let dir = std::env::temp_dir().join(format!(
        "spectroai-fault-injection-{}",
        std::process::id()
    ));
    let store = Store::in_memory();
    let mut ids = Vec::new();
    for run in 0..4 {
        ids.push(
            store
                .insert(
                    "networks",
                    Metadata::created_by("tool-4").with_param("run", run),
                    &serde_json::json!({
                        "validation_mae": 0.004 + run as f64 * 0.001,
                        "weights": [0.25, -1.5, 3.75],
                    }),
                )
                .unwrap(),
        );
    }

    // Tear the third document's write mid-flight.
    let plan = FaultPlan::new().with_torn_write(2);
    store.save_to_dir_with_faults(&dir, &plan).unwrap();
    assert_eq!(plan.events(), vec![FaultEvent::TornWrite { write_index: 2 }]);

    let report = Store::load_from_dir_report(&dir).unwrap();
    assert_eq!(report.loaded, 3);
    assert_eq!(report.quarantined.len(), 1);
    assert!(report.quarantined[0].reason.contains("invalid JSON"));
    assert!(dir
        .join("quarantine")
        .join(&report.quarantined[0].file)
        .exists());

    // The surviving documents are intact and queryable.
    let mut found = 0;
    for &id in &ids {
        if let Ok(doc) = report.store.get(id) {
            assert_eq!(doc.collection, "networks");
            found += 1;
        }
    }
    assert_eq!(found, 3);
    std::fs::remove_dir_all(&dir).ok();
}
