//! End-to-end integration test of the NMR flow (acquisition →
//! augmentation → CNN/LSTM training → IHM comparison).

use spectroai::pipeline::nmr::{NmrPipeline, NmrPipelineConfig};

#[test]
fn nmr_pipeline_trains_both_models() {
    let config = NmrPipelineConfig::quick_test();
    let report = NmrPipeline::new(config).unwrap().run().unwrap();

    assert_eq!(report.cnn.parameters, 10_532);
    assert_eq!(report.lstm.parameters, 221_956);
    assert_eq!(report.experiment.len(), 300);

    // The CNN must learn the task to a useful level even at CI scale
    // (concentrations are 0–0.85 mol/L; MSE below 0.01 means ~<0.1 mol/L
    // typical error).
    assert!(report.cnn.mse < 0.02, "cnn mse {}", report.cnn.mse);
    assert!(report.lstm.mse.is_finite());
    assert!(report.cnn.seconds_per_spectrum > 0.0);
    assert!(report.lstm.seconds_per_spectrum > 0.0);
    assert!(report.ihm.is_none(), "quick config skips IHM");
}

#[test]
fn ihm_baseline_recovers_concentrations_on_experimental_data() {
    use chem::nmr::lithiation_components;
    use chemometrics::ihm::IhmAnalyzer;
    use nmr_sim::experiment::{ExperimentConfig, FlowReactorExperiment};

    let run = FlowReactorExperiment::new(9, ExperimentConfig::default())
        .acquire()
        .unwrap();
    let analyzer = IhmAnalyzer::new(lithiation_components(), *run.spectra[0].axis()).unwrap();
    // Analyze a handful of spectra from different plateaus.
    let mut square_error = 0.0;
    let mut n = 0usize;
    for &i in &[0usize, 80, 160, 240, 299] {
        let fit = analyzer.fit(&run.spectra[i]).unwrap();
        for (p, r) in fit.concentrations.iter().zip(&run.reference[i]) {
            square_error += (p - r) * (p - r);
            n += 1;
        }
    }
    let mse = square_error / n as f64;
    assert!(mse < 0.03, "IHM mse {mse}");
}

#[test]
fn augmentation_size_improves_cnn_accuracy() {
    // The core claim of the paper's augmentation method: more synthetic
    // spectra -> better model (up to saturation).
    let small = NmrPipelineConfig {
        augmented_spectra: 60,
        cnn_epochs: 8,
        lstm_epochs: 1,
        lstm_windows: 20,
        run_ihm: false,
        ..NmrPipelineConfig::quick_test()
    };
    let large = NmrPipelineConfig {
        augmented_spectra: 800,
        cnn_epochs: 8,
        lstm_epochs: 1,
        lstm_windows: 20,
        run_ihm: false,
        ..NmrPipelineConfig::quick_test()
    };
    let small_report = NmrPipeline::new(small).unwrap().run().unwrap();
    let large_report = NmrPipeline::new(large).unwrap().run().unwrap();
    assert!(
        large_report.cnn.mse < small_report.cnn.mse,
        "more augmentation should help: {} vs {}",
        large_report.cnn.mse,
        small_report.cnn.mse
    );
}
