//! End-to-end integration test of the MS flow (Tools 1–4 + evaluation).

use ms_sim::campaign::{run_evaluation_campaign, MS_TASK_SUBSTANCES};
use ms_sim::prototype::{ideal_config, MmsPrototype};
use spectroai::eval::{select_best, EvaluationReport, QualityCriterion};
use spectroai::pipeline::ms::{evaluate_on, ActivationChoice, MsPipeline, MsPipelineConfig};

#[test]
fn pipeline_learns_and_shows_sim_to_real_gap() {
    let config = MsPipelineConfig {
        training_spectra: 1_000,
        epochs: 6,
        ..MsPipelineConfig::quick_test()
    };
    let mut prototype = MmsPrototype::new(11);
    let report = MsPipeline::new(config).unwrap().run(&mut prototype).unwrap();

    // The network learned the simulated task. (A random simplex guess
    // over 8 substances scores ~0.2 MAE; CI-scale training reaches ~0.06;
    // paper-scale runs in the harness binaries reach well below 0.01.)
    assert!(
        report.validation_mae < 0.075,
        "validation MAE {}",
        report.validation_mae
    );
    // Measured data is harder than simulated data (the paper's central
    // observation).
    assert!(
        report.measured_mae > report.validation_mae,
        "no sim-to-real gap: sim {} vs measured {}",
        report.validation_mae,
        report.measured_mae
    );
    // Per-substance vectors are coherent.
    assert_eq!(report.per_substance_measured.len(), 8);
    assert_eq!(report.substances, MS_TASK_SUBSTANCES.to_vec());
    let mean: f64 = report.per_substance_measured.iter().sum::<f64>()
        / report.per_substance_measured.len() as f64;
    assert!((mean - report.measured_mae).abs() < 1e-9);
}

#[test]
fn ideal_prototype_closes_the_gap() {
    // With every hidden effect disabled, measured data matches the
    // simulator and the measured MAE drops close to the validation MAE.
    // A fast-training variant (linear conv head + softmax output) with
    // enough budget to genuinely learn the task: the evaluation campaign
    // contains pure gases, which sit at the edge of the training simplex
    // and dominate the error of an undertrained network on *both*
    // prototypes, masking the effect under test.
    let config = MsPipelineConfig {
        training_spectra: 2_000,
        epochs: 10,
        batch_size: 16,
        learning_rate: 2e-3,
        activations: ActivationChoice {
            hidden: neural::Activation::Relu,
            final_conv: neural::Activation::Linear,
            output: neural::Activation::Softmax,
        },
        ..MsPipelineConfig::quick_test()
    };
    let mut realistic = MmsPrototype::new(21);
    let realistic_report = MsPipeline::new(config.clone())
        .unwrap()
        .run(&mut realistic)
        .unwrap();

    let mut ideal = MmsPrototype::with_config(21, ideal_config());
    let ideal_report = MsPipeline::new(config).unwrap().run(&mut ideal).unwrap();

    assert!(
        ideal_report.measured_mae < realistic_report.measured_mae,
        "ideal prototype ({}) should beat realistic ({})",
        ideal_report.measured_mae,
        realistic_report.measured_mae
    );
}

#[test]
fn trained_network_transfers_to_a_fresh_campaign() {
    let config = MsPipelineConfig::quick_test();
    let axis = config.axis;
    let mut prototype = MmsPrototype::new(31);
    let mut report = MsPipeline::new(config).unwrap().run(&mut prototype).unwrap();

    // A second, fresh evaluation campaign (more drift accumulated).
    let fresh = run_evaluation_campaign(&mut prototype, 2).unwrap();
    let mut fresh_resampled = fresh;
    let src = fresh_resampled.axis;
    fresh_resampled.inputs = fresh_resampled
        .inputs
        .iter()
        .map(|row| spectrum::interp::resample(&src, row, &axis))
        .collect();
    fresh_resampled.axis = axis;
    let (mae, per_substance) = evaluate_on(&mut report.network, &fresh_resampled).unwrap();
    assert!(mae.is_finite() && mae < 0.2, "fresh-campaign MAE {mae}");
    assert_eq!(per_substance.len(), 8);
}

#[test]
fn evaluation_reports_rank_activation_variants() {
    // Build two synthetic evaluation reports and check the selection
    // backend plumbing used by the Figure 5 harness.
    let softmax = EvaluationReport::new(
        ActivationChoice::paper_best().label(),
        vec![0.01; 8],
        MS_TASK_SUBSTANCES.iter().map(|s| s.to_string()).collect(),
    );
    let linear = EvaluationReport::new(
        ActivationChoice::paper_initial().label(),
        vec![0.04; 8],
        MS_TASK_SUBSTANCES.iter().map(|s| s.to_string()).collect(),
    );
    let candidates = vec![linear, softmax];
    let best = select_best(&candidates, QualityCriterion::MeanError).unwrap();
    assert_eq!(best.name, "selu sftm/sftm");
}
