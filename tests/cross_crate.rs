//! Cross-crate consistency checks: the pieces the pipelines compose must
//! agree on conventions (axes, label orders, parameter counts, units).

use chem::nmr::{lithiation_components, LITHIATION_NAMES};
use chem::reaction::{default_doe, LithiationReaction};
use ms_sim::campaign::MS_TASK_SUBSTANCES;
use ms_sim::instrument::default_axis;
use platform::{estimate, Device, Workload};
use spectroai::pipeline::ms::{ActivationChoice, MsPipeline};
use spectroai::pipeline::nmr::NmrPipeline;

#[test]
fn ms_axis_matches_table1_input() {
    // The default axis must produce exactly the 397 inputs of Table 1.
    let axis = default_axis();
    assert_eq!(axis.len(), 397);
    let spec = MsPipeline::table1_spec(axis.len(), MS_TASK_SUBSTANCES.len(), ActivationChoice::paper_best());
    let net = spec.build(1).unwrap();
    assert_eq!(net.input_len(), axis.len());
    assert_eq!(net.output_len(), MS_TASK_SUBSTANCES.len());
}

#[test]
fn nmr_axis_component_order_and_param_counts_agree() {
    let axis = nmr_sim::nmr_axis();
    assert_eq!(axis.len(), 1700);
    // Component library order matches the canonical names everywhere.
    let components = lithiation_components();
    for (c, name) in components.iter().zip(LITHIATION_NAMES) {
        assert_eq!(c.name(), name);
    }
    // Both model topologies hit the paper's exact parameter counts.
    assert_eq!(NmrPipeline::cnn_spec().build(1).unwrap().param_count(), 10_532);
    assert_eq!(
        NmrPipeline::lstm_spec(5).build(1).unwrap().param_count(),
        221_956
    );
}

#[test]
fn reaction_concentrations_fit_augmentation_ranges() {
    // Every DoE steady state must be inside the augmentation sampling
    // ranges, otherwise trained networks would extrapolate (the paper
    // warns "application is limited to parameter ranges within the
    // training data").
    let reaction = LithiationReaction::new();
    let bounds = nmr_sim::augment::AugmentationConfig::default().concentration_max;
    for point in default_doe() {
        let conc = reaction.steady_state(&point).unwrap().to_vec();
        for (value, bound) in conc.iter().zip(&bounds) {
            assert!(
                value <= bound,
                "steady state {value} exceeds augmentation bound {bound}"
            );
        }
    }
}

#[test]
fn platform_workload_derives_from_real_networks() {
    // Table 1 network -> platform model: the MAC count feeding Table 2
    // comes from the actual built network, not a hand-typed constant.
    let net = MsPipeline::table1_spec(397, 8, ActivationChoice::paper_best())
        .build(1)
        .unwrap();
    let workload = Workload::from_network("table1", &net);
    assert!(workload.macs_per_inference > 1_000_000);
    assert_eq!(workload.parameters, net.param_count());
    let run = estimate(&Device::jetson_nano_gpu(), &workload, 21_600);
    assert!(run.seconds > 1.0 && run.seconds < 100.0);
}

#[test]
fn ihm_and_cnn_share_component_units() {
    // A spectrum synthesized at known concentrations must be read back
    // consistently by IHM (model units == mol/L).
    use chemometrics::ihm::IhmAnalyzer;
    use spectrum::ContinuousSpectrum;

    let axis = nmr_sim::nmr_axis();
    let components = lithiation_components();
    let truth = [0.4, 0.3, 0.2, 0.1];
    let mut mixture = ContinuousSpectrum::zeros(axis);
    for (component, &c) in components.iter().zip(&truth) {
        mixture
            .add_assign(&component.render(&axis, c, 0.0, 1.0).unwrap())
            .unwrap();
    }
    let analyzer = IhmAnalyzer::new(components, axis).unwrap();
    let fit = analyzer.fit(&mixture).unwrap();
    for (found, expect) in fit.concentrations.iter().zip(&truth) {
        assert!((found - expect).abs() < 0.01, "{found} vs {expect}");
    }
}

#[test]
fn peak_detection_finds_expected_fragments_in_measured_spectra() {
    // Detect peaks in a prototype measurement and check they line up
    // with the ideal fragment positions (within calibration offset).
    use chem::Mixture;
    use ms_sim::prototype::MmsPrototype;
    use spectrum::peaks::{find_peaks, savitzky_golay};

    let mut mms = MmsPrototype::new(55);
    let mixture = Mixture::from_fractions(vec![
        ("N2".into(), 0.6),
        ("CO2".into(), 0.4),
    ])
    .unwrap();
    let sample = mms.measure(&mixture).unwrap();
    let smooth = savitzky_golay(&sample.spectrum, 5, 2).unwrap();
    let peaks = find_peaks(&smooth, 0.08, 2.0).unwrap();
    // The two base peaks (28 and 44) must be found near their positions.
    for expected in [28.0, 44.0] {
        assert!(
            peaks.iter().any(|p| (p.position - expected).abs() < 0.5),
            "no peak near m/z {expected}: {peaks:?}"
        );
    }
    // And the ignition gas shows up without being in the mixture. Its
    // peak is weak (He sensitivity 0.14 x level 0.25 ≈ 0.07 height, and
    // the hidden gain fluctuation can shrink it further), so detect it
    // with a lower height threshold.
    let faint = find_peaks(&smooth, 0.02, 2.0).unwrap();
    assert!(
        faint.iter().any(|p| (p.position - 4.0).abs() < 0.5),
        "ignition-gas peak missing: {faint:?}"
    );
}

#[test]
fn formula_parser_agrees_with_gas_library_masses() {
    use chem::formula::molar_mass;
    use chem::fragmentation::GasLibrary;

    for pattern in &GasLibrary::standard() {
        let compound = pattern.compound();
        let parsed = molar_mass(compound.formula()).unwrap();
        assert!(
            (parsed - compound.molar_mass()).abs() < 0.05,
            "{}: parsed {parsed} vs library {}",
            compound.name(),
            compound.molar_mass()
        );
    }
}
