//! Provenance-tracking integration: a full MS run recorded and traced
//! through the datastore, including persistence to disk.

use datastore::Store;
use ms_sim::prototype::MmsPrototype;
use neural::export::ExportedNetwork;
use spectroai::pipeline::ms::{MsPipeline, MsPipelineConfig};
use spectroai::provenance::{collections, record_ms_run};

#[test]
fn full_lineage_survives_disk_roundtrip() {
    let mut prototype = MmsPrototype::new(17);
    let report = MsPipeline::new(MsPipelineConfig::quick_test())
        .unwrap()
        .run(&mut prototype)
        .unwrap();

    let store = Store::in_memory();
    let recorded = record_ms_run(&store, &report, "roundtrip").unwrap();

    let dir = std::env::temp_dir().join(format!("spectroai-prov-{}", std::process::id()));
    store.save_to_dir(&dir).unwrap();
    let loaded = Store::load_from_dir(&dir).unwrap();
    std::fs::remove_dir_all(&dir).ok();

    // The lineage question of the paper: which measurements trained this
    // network?
    let lineage = loaded.lineage(recorded.network).unwrap();
    assert!(lineage.contains(&recorded.measurements));

    // The reloaded network still predicts.
    let exported: ExportedNetwork = loaded.get_payload(recorded.network).unwrap();
    let mut network = exported.instantiate().unwrap();
    let prediction = network.predict(&vec![0.01; report.spec.input_len]);
    assert_eq!(prediction.len(), 8);
    let sum: f32 = prediction.iter().sum();
    assert!((sum - 1.0).abs() < 1e-4, "softmax outputs sum to {sum}");

    // Children navigation: the measurements fan out to simulator and result.
    let children = loaded.children(recorded.measurements);
    assert!(children.contains(&recorded.simulator));
    assert!(children.contains(&recorded.result));

    // All five collections are present.
    for name in [
        collections::MEASUREMENTS,
        collections::SIMULATORS,
        collections::DATASETS,
        collections::NETWORKS,
        collections::RESULTS,
    ] {
        assert_eq!(loaded.collection(name).len(), 1, "{name}");
    }
}
